"""Local HTTP surface for the job service (stdlib only).

``python -m repro serve`` binds a :class:`ThreadingHTTPServer` whose
handler delegates to a :class:`~repro.service.jobs.JobService`.  The
surface is deliberately small and versioned under ``/v1``:

=======  ==============================  =======================================
method   path                            action
=======  ==============================  =======================================
POST     ``/v1/scenarios``               submit a scenario document (YAML/JSON
                                         body); 200 with ``run_id``, 400 on
                                         validation error (path-qualified
                                         message in ``error``), 429 (with a
                                         ``Retry-After`` header) when the
                                         bounded queue is full, 503 (also
                                         ``Retry-After``) while degraded
GET      ``/v1/runs``                    list runs (``?state=``, ``?name=``);
                                         ``?limit=``/``?offset=`` paginate in
                                         stable registration order (served
                                         from the sqlite ledger) and switch
                                         the response to an envelope with
                                         ``runs``/``total``/``limit``/``offset``
GET      ``/v1/failures``                the FAILURES view: failed and
                                         quarantined runs, newest first
GET      ``/v1/runs/<id>``               status + journal-derived progress
GET      ``/v1/runs/<id>/journal``       the append-only event log (JSONL)
GET      ``/v1/runs/<id>/results``       checksummed result table
                                         (``?format=json|txt|csv``); 409 until
                                         the run is ``done``, 500 on tamper
                                         (verify-on-read: the run is
                                         quarantined, the bytes never served)
POST     ``/v1/runs/<id>/cancel``        cooperative cancellation
POST     ``/v1/runs/<id>/replay``        synchronous bit-replay; ``identical``
                                         in the body, 500 on divergence/tamper
GET      ``/healthz``                    liveness + queue/worker/degraded stats
GET      ``/metrics``                    Prometheus text exposition
=======  ==============================  =======================================

Run ids accept any unique digest prefix, mirroring the CLI.  Reads keep
working while the service is degraded -- only submissions 503.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import telemetry
from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.service.jobs import (
    BackpressureError,
    JobService,
    ServiceDegradedError,
)
from repro.service.scenario import parse_scenario

__all__ = ["make_server", "ServiceHandler"]

MAX_BODY_BYTES = 1 << 20  # a scenario document, not a payload channel


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes /v1 requests onto the owning server's JobService."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Set by make_server on the server object; typed here for clarity.
    service: JobService

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- plumbing ----------------------------------------------------------

    @property
    def svc(self) -> JobService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json(
        self, code: int, payload: dict | list, headers: dict | None = None
    ) -> None:
        self._send(
            code,
            (json.dumps(payload, sort_keys=True) + "\n").encode(),
            "application/json",
            headers=headers,
        )

    def _text(self, code: int, text: str, content_type: str = "text/plain") -> None:
        self._send(code, text.encode(), content_type)

    def _error(self, code: int, message: str, headers: dict | None = None) -> None:
        self._json(code, {"error": message}, headers=headers)

    def _body(self) -> str:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        return self.rfile.read(length).decode("utf-8", errors="replace")

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Route read-only endpoints (health, metrics, run queries)."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._json(200, {"ok": True, **self.svc.stats()})
            elif parts == ["metrics"]:
                tel = telemetry.get_telemetry()
                text = (
                    telemetry.prometheus_text(tel.metrics)
                    if tel.enabled
                    else "# telemetry disabled\n"
                )
                self._text(200, text, "text/plain; version=0.0.4")
            elif parts == ["v1", "runs"]:
                self._list_runs(parse_qs(url.query))
            elif parts == ["v1", "failures"]:
                self._json(200, self.svc.store.failures())
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                record = self.svc.store.get(parts[2])
                self._json(200, self.svc.store.progress(record.run_id))
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"]:
                self._get_run_sub(parts[2], parts[3], parse_qs(url.query))
            else:
                self._error(404, f"no route for GET {url.path}")
        except ConfigurationError as exc:
            self._error(404 if "no run" in str(exc) else 400, str(exc))
        except ChecksumMismatchError as exc:
            self._error(500, str(exc))

    def _list_runs(self, query: dict) -> None:
        """GET /v1/runs: bare list, or a paginated envelope with limit/offset.

        The response shape is backward compatible: without pagination
        params clients get the PR 8 bare JSON list; with either param
        they get ``{"runs", "total", "limit", "offset"}`` so they can
        page through ``total`` in stable registration order.
        """
        state = (query.get("state") or [None])[0]
        name = (query.get("name") or [None])[0]
        raw_limit = (query.get("limit") or [None])[0]
        raw_offset = (query.get("offset") or [None])[0]
        if raw_limit is None and raw_offset is None:
            self._json(200, self.svc.store.query(state=state, name=name))
            return
        try:
            limit = None if raw_limit is None else int(raw_limit)
            offset = 0 if raw_offset is None else int(raw_offset)
            if (limit is not None and limit < 0) or offset < 0:
                raise ValueError
        except ValueError:
            self._error(
                400,
                f"limit/offset must be non-negative integers "
                f"(got limit={raw_limit!r}, offset={raw_offset!r})",
            )
            return
        runs = self.svc.store.query(
            state=state, name=name, limit=limit, offset=offset
        )
        self._json(
            200,
            {
                "runs": runs,
                "total": self.svc.store.count(state=state, name=name),
                "limit": limit,
                "offset": offset,
            },
        )

    def _get_run_sub(self, run_id: str, sub: str, query: dict) -> None:
        store = self.svc.store
        record = store.get(run_id)
        if sub == "journal":
            lines = [
                json.dumps(rec, sort_keys=True)
                for rec in store.journal(record.run_id)
            ]
            self._text(200, "\n".join(lines) + "\n", "application/jsonl")
        elif sub == "results":
            status = store.status(record.run_id)
            state = status.get("state")
            if state == "quarantined":
                # Never serve a quarantined run; surface why it is parked.
                self._error(
                    500,
                    f"run {record.run_id} is quarantined: "
                    f"{status.get('error', 'unknown reason')}",
                )
                return
            if state != "done":
                self._error(
                    409, f"run {record.run_id} is {state!r}, not 'done'"
                )
                return
            # Verify-on-read: a checksum mismatch quarantines the run and
            # raises (mapped to 500 below); tampered bytes never leave.
            table = store.serve_table(record.run_id)
            fmt = (query.get("format") or ["json"])[0]
            if fmt == "txt":
                self._text(200, table.render() + "\n")
            elif fmt == "csv":
                self._text(200, table.to_csv() + "\n", "text/csv")
            elif fmt == "json":
                self._json(
                    200,
                    {"run_id": record.run_id, "table": table.to_jsonable()},
                )
            else:
                self._error(400, f"unknown format {fmt!r}; use json|txt|csv")
        elif sub == "manifest":
            self._json(200, store.manifest(record.run_id))
        else:
            self._error(404, f"no route for GET /v1/runs/<id>/{sub}")

    def do_POST(self) -> None:  # noqa: N802
        """Route mutating endpoints (submit, cancel, replay)."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "scenarios"]:
                scenario = parse_scenario(self._body(), source="<http>")
                summary = self.svc.submit(
                    scenario,
                    invocation={"subcommand": "serve", "argv": ["POST /v1/scenarios"]},
                )
                self._json(200, summary)
            elif len(parts) == 4 and parts[:2] == ["v1", "runs"]:
                run_id, action = parts[2], parts[3]
                if action == "cancel":
                    self._json(200, self.svc.cancel(run_id))
                elif action == "replay":
                    report = self.svc.store.replay(
                        run_id, jobs=self.svc.jobs_per_run
                    )
                    payload = {
                        "run_id": report.run_id,
                        "identical": report.identical,
                        "detail": report.detail,
                    }
                    self._json(200 if report.identical else 500, payload)
                else:
                    self._error(404, f"no route for POST /v1/runs/<id>/{action}")
            else:
                self._error(404, f"no route for POST {url.path}")
        except BackpressureError as exc:
            self._error(
                429, str(exc),
                headers={"Retry-After": self.svc.retry_after_hint()},
            )
        except ServiceDegradedError as exc:
            self._error(
                503, str(exc),
                headers={"Retry-After": self.svc.retry_after_hint()},
            )
        except ConfigurationError as exc:
            self._error(404 if "no run" in str(exc) else 400, str(exc))
        except ChecksumMismatchError as exc:
            self._error(500, str(exc))


def make_server(
    service: JobService, host: str = "127.0.0.1", port: int = 0, verbose: bool = False
) -> ThreadingHTTPServer:
    """Bind the service's HTTP server (port 0 picks a free port)."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server

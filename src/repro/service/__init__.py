"""``repro.service`` -- simulation-as-a-service.

The service stack turns the reproduction's python entry points into a
declarative, replayable pipeline (see ``docs/service.md``):

* :mod:`repro.service.scenario` -- schema-versioned YAML/JSON scenario
  documents compiled into validated
  :class:`~repro.experiments.cells.CellSpec` lists with deterministic
  ``(root_seed, path)`` derivations and a canonical content digest;
* :mod:`repro.service.store` -- a content-addressed on-disk store of run
  directories keyed by scenario digest: register, query, execute with
  shard checkpoints, stream journals, load checksummed result tables,
  and bit-replay any run from its manifest;
* :mod:`repro.service.ledger` -- the durable WAL-mode sqlite index over
  the store (state transitions, attempts, digests, a FAILURES view),
  reconciled against directory truth on startup;
* :mod:`repro.service.jobs` -- a restart-surviving job queue with bounded
  concurrency and backpressure scheduling scenario runs onto a
  supervised worker-process fleet (heartbeats, per-run deadlines,
  crash requeue, bounded seeded retry, quarantine, degraded mode);
* :mod:`repro.service.supervisor` -- the fleet itself (the PR 7
  terminate-then-kill supervision idiom applied to whole runs);
* :mod:`repro.service.chaos` -- deterministic service-level fault
  injection (``worker:kill/hang``, ``store:tamper``, ``disk:full``);
* :mod:`repro.service.api` -- the local HTTP surface
  (``python -m repro serve``) exposing submit/status/progress/results/
  cancel/replay/failures plus Prometheus metrics;
* :mod:`repro.service.cli` -- ``python -m repro scenario
  {validate,run,submit,status,results,replay,list}``.
"""

from __future__ import annotations

from repro.service.scenario import (
    SCENARIO_SCHEMA_VERSION,
    Scenario,
    expand,
    load_scenario,
    parse_scenario,
    scenario_digest,
)
from repro.service.jobs import (
    BackpressureError,
    JobService,
    ServiceDegradedError,
)
from repro.service.ledger import RunLedger
from repro.service.store import ReplayReport, RunRecord, RunStore
from repro.service.supervisor import FleetEvent, WorkerFleet

__all__ = [
    "JobService",
    "BackpressureError",
    "ServiceDegradedError",
    "SCENARIO_SCHEMA_VERSION",
    "Scenario",
    "parse_scenario",
    "load_scenario",
    "expand",
    "scenario_digest",
    "RunStore",
    "RunRecord",
    "ReplayReport",
    "RunLedger",
    "WorkerFleet",
    "FleetEvent",
]

"""Content-addressed run store: durable, queryable, bit-replayable runs.

Every run directory is keyed by its scenario's content digest
(:func:`repro.service.scenario.scenario_digest`), so registering the
same document twice addresses the same run -- the store is idempotent
by construction.  Layout::

    STORE_ROOT/runs/<run_id>/        run_id = digest[:16]
      scenario.json        normalized scenario document (digest preimage)
      manifest.json        checkpoint.build_manifest + scenario_digest
                           + the invoking CLI argv (how it was produced)
      status.json          {"state": queued|running|done|failed|
                          cancelled|quarantined, ...}
      CANCEL               cooperative-cancel marker (present only while
                           a cancellation is pending; polled between
                           cells, works across process boundaries)
      journal.jsonl        append-only event log (registered, started,
                           per-cell progress, done/failed)
      shards/block-*.json  content-addressed block checkpoints written
                           during execution (crash-safe resume)
      tables/SCENARIO.json checksummed result-table payload
      SCENARIO.txt / .csv  rendered outputs

Execution always takes the supervised sharded path
(:func:`repro.experiments.cells.run_cells_sharded_report`) with the
scenario's ``block_size``, so results are byte-identical for any worker
count, and a run killed mid-flight resumes from its block checkpoints.
:meth:`RunStore.replay` re-executes a stored run from its manifest
alone -- scenario digest verified, tables recomputed in memory and
compared byte-for-byte against the checksummed stored payloads -- so
both silent bit-rot (checksum mismatch) and result drift (payload
mismatch) are loud.

Since PR 9 the store also maintains a durable sqlite index
(``STORE_ROOT/ledger.db``, :class:`repro.service.ledger.RunLedger`):
every registration and state transition is mirrored there best-effort
(the directory stays the source of truth; a broken ledger degrades
:meth:`query` to a directory scan, never correctness), giving O(1)
listing/filtering/pagination and a FAILURES view over failed and
quarantined runs.  :meth:`serve_table` is the verify-on-read gate: a
stored table that fails its checksum is *quarantined*, never served.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.experiments.cells import CellSpec, run_cells_sharded_report
from repro.experiments.checkpoint import (
    SHARD_SUBDIR,
    atomic_write_text,
    build_manifest,
    payload_checksum,
    table_payload,
)
from repro.experiments.harness import Column, Table, summarize_times
from repro.service.ledger import LEDGER_NAME, RunLedger
from repro.service.scenario import (
    Scenario,
    expand,
    scenario_digest,
    scenario_from_jsonable,
)

__all__ = [
    "RUN_ID_LEN",
    "RUN_STATES",
    "RunRecord",
    "ReplayReport",
    "RunStore",
    "results_table",
]

RUNS_SUBDIR = "runs"
TABLES_SUBDIR = "tables"
SCENARIO_NAME = "scenario.json"
STATUS_NAME = "status.json"
JOURNAL_NAME = "journal.jsonl"
MANIFEST_NAME = "manifest.json"
TABLE_NAME = "SCENARIO"
#: Cooperative cancellation marker inside a run directory; polled
#: between cells so a cancel request crosses the worker-process boundary.
CANCEL_NAME = "CANCEL"

#: Hex digits of the scenario digest used as the run id.
RUN_ID_LEN = 16

RUN_STATES = (
    "queued", "running", "done", "failed", "cancelled", "quarantined",
)


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One registered run: its id, directory, and validated scenario."""

    run_id: str
    root: Path
    scenario: Scenario

    @property
    def shards_dir(self) -> Path:
        return self.root / SHARD_SUBDIR

    @property
    def tables_dir(self) -> Path:
        return self.root / TABLES_SUBDIR


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of a bit-replay: stored vs recomputed tables."""

    run_id: str
    identical: bool
    detail: str

    def describe(self) -> str:
        """One-line human verdict (REPRODUCED/DIVERGED + detail)."""
        verdict = "REPRODUCED" if self.identical else "DIVERGED"
        return f"{verdict} run {self.run_id}: {self.detail}"


def results_table(scenario: Scenario, specs: list[CellSpec], results: list[list]) -> Table:
    """One summary row per cell of a scenario run.

    The table (name ``SCENARIO``) is the run's canonical result payload:
    checkpointed with a checksum, compared byte-for-byte on replay.
    Cells whose result lists carry no timeable runs (quarantined-empty,
    or payload kinds like estimation tuples) report NaN summaries.
    """
    table = Table(
        name=TABLE_NAME,
        title=f"scenario {scenario.name}",
        claim=(
            f"scenario digest {scenario_digest(scenario)} fully determines "
            "these results: cell seeds derive from (seed, path_tag, ordinal, "
            "SHARD_BLOCK_TAG, block), identical for any worker count"
        ),
        columns=[
            Column("kind", "kind"),
            Column("n", "n"),
            Column("eps", "eps", "g"),
            Column("T", "T"),
            Column("adversary", "adversary"),
            Column("reps", "reps"),
            Column("success", "success", ".3f"),
            Column("median_slots", "median slots", ".1f"),
            Column("p90_slots", "p90 slots", ".1f"),
        ],
    )
    for spec, cell_results in zip(specs, results):
        runs = [
            r
            for r in cell_results or []
            if hasattr(r, "slots") and hasattr(r, "elected")
        ]
        row = {
            "kind": spec.kind,
            "n": spec.n,
            "eps": spec.eps,
            "T": spec.T,
            "adversary": spec.adversary,
        }
        if not runs:
            table.add_row(
                **row,
                reps=len(cell_results or []),
                success=float("nan"),
                median_slots=float("nan"),
                p90_slots=float("nan"),
            )
            continue
        stats = summarize_times(runs)
        table.add_row(
            **row,
            reps=stats["reps"],
            success=stats["success_rate"],
            median_slots=stats["median_slots"],
            p90_slots=stats["p90_slots"],
        )
    return table


class RunStore:
    """The content-addressed store of scenario runs (see module docstring)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._ledger: RunLedger | None = None
        self._ledger_checked = False

    # -- paths -------------------------------------------------------------

    @property
    def runs_dir(self) -> Path:
        return self.root / RUNS_SUBDIR

    def run_dir(self, run_id: str) -> Path:
        """The directory a run id addresses (whether or not it exists)."""
        return self.runs_dir / run_id

    # -- ledger (the sqlite index; directory stays source of truth) --------

    @property
    def ledger(self) -> RunLedger:
        """The store's sqlite index (created lazily on first use)."""
        if self._ledger is None:
            self._ledger = RunLedger(self.root / LEDGER_NAME)
        return self._ledger

    def _ledger_record(self, run_id: str, state: str, **kwargs) -> None:
        """Mirror a transition into the index; never let it break a write."""
        try:
            self.ledger.record(run_id, state, **kwargs)
        except (sqlite3.Error, OSError):
            self._count_ledger_error()

    def _synced_ledger(self) -> RunLedger | None:
        """The ledger, reconciled once per store instance when out of sync.

        Returns None (callers fall back to directory scans) when sqlite
        is unusable.  The sync check is a cheap count comparison: it
        catches a deleted/older ledger and runs registered behind the
        index's back; per-row staleness is repaired by :meth:`status`
        overlay in :meth:`query`.
        """
        try:
            if not self._ledger_checked:
                self._ledger_checked = True
                if self.ledger.count() != len(self.run_ids()):
                    self.ledger.reconcile(self.runs_dir)
            return self.ledger
        except (sqlite3.Error, OSError):
            self._count_ledger_error()
            return None

    def reconcile_ledger(self) -> dict:
        """Force a full directory -> ledger reconciliation (startup path)."""
        self._ledger_checked = True
        summary = self.ledger.reconcile(self.runs_dir)
        tel = telemetry.get_telemetry()
        for key in ("added", "updated", "dropped"):
            if summary.get(key):
                tel.counter(
                    "service_ledger_reconciled_total", change=key
                ).inc(summary[key])
        return summary

    @staticmethod
    def _count_ledger_error() -> None:
        telemetry.get_telemetry().counter("service_ledger_errors_total").inc()

    # -- registration ------------------------------------------------------

    def register(
        self, scenario: Scenario, invocation: dict | None = None
    ) -> tuple[RunRecord, bool]:
        """Register a scenario; returns ``(record, created)``.

        Idempotent: the run id is the scenario digest prefix, so a
        resubmission of the same document (any formatting, any key
        order) lands on the existing run directory untouched.
        """
        digest = scenario_digest(scenario)
        run_id = digest[:RUN_ID_LEN]
        root = self.run_dir(run_id)
        record = RunRecord(run_id=run_id, root=root, scenario=scenario)
        if root.is_dir():
            return record, False
        root.mkdir(parents=True)
        record.shards_dir.mkdir()
        record.tables_dir.mkdir()
        atomic_write_text(
            root / SCENARIO_NAME,
            json.dumps(scenario.to_jsonable(), indent=2, sort_keys=True),
        )
        manifest = build_manifest(
            preset="scenario",
            ids=[scenario.name],
            seed=scenario.seed,
            invocation=invocation,
            scenario_digest=digest,
        )
        atomic_write_text(
            root / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True)
        )
        self.set_state(run_id, "queued")
        try:
            self.ledger.annotate(run_id, scenario=scenario.name, digest=digest)
        except (sqlite3.Error, OSError):
            self._count_ledger_error()
        self.append_journal(run_id, {"event": "registered", "digest": digest})
        return record, True

    # -- lookup ------------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All registered run ids, sorted."""
        if not self.runs_dir.is_dir():
            return []
        return sorted(p.name for p in self.runs_dir.iterdir() if p.is_dir())

    def get(self, run_id: str) -> RunRecord:
        """Fetch a run by id or unique id prefix."""
        ids = self.run_ids()
        if run_id in ids:
            matches = [run_id]
        else:
            matches = [i for i in ids if i.startswith(run_id)]
        if not matches:
            raise ConfigurationError(
                f"no run {run_id!r} in store {self.root} "
                f"({len(ids)} runs registered)"
            )
        if len(matches) > 1:
            raise ConfigurationError(
                f"ambiguous run id prefix {run_id!r}: matches {matches}"
            )
        root = self.run_dir(matches[0])
        scenario = self._load_scenario(root)
        return RunRecord(run_id=matches[0], root=root, scenario=scenario)

    def records(self) -> list[RunRecord]:
        """All registered runs (sorted by id)."""
        return [self.get(run_id) for run_id in self.run_ids()]

    def query(
        self,
        state: str | None = None,
        name: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[dict]:
        """Summaries of registered runs, optionally filtered and paginated.

        Served from the sqlite ledger in stable registration order --
        O(page size), not O(runs).  Each summary row is overlaid with the
        run's live ``status.json`` fields (timestamps, checksums, error
        text), so directory truth always wins over a stale index row.
        Falls back to a full directory scan when the ledger is unusable.
        """
        ledger = self._synced_ledger()
        if ledger is None:
            return self._query_scan(state, name, limit, offset)
        try:
            rows = ledger.query(state=state, name=name, limit=limit, offset=offset)
        except (sqlite3.Error, OSError):
            self._count_ledger_error()
            return self._query_scan(state, name, limit, offset)
        out = []
        for row in rows:
            status = self.status(row["run_id"])
            summary = {
                "run_id": row["run_id"],
                "scenario": row["scenario"],
                "attempts": row["attempts"],
                **status,
            }
            if not status:  # directory row vanished; report the index view
                summary["state"] = row["state"]
            out.append(summary)
        return out

    def _query_scan(
        self,
        state: str | None,
        name: str | None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[dict]:
        """The O(runs) directory-walk fallback (ledger unusable)."""
        out = []
        for run_id in self.run_ids():
            status = self.status(run_id)
            scenario_name = None
            try:
                scenario_name = self._load_scenario(self.run_dir(run_id)).name
            except ConfigurationError:
                pass
            if state is not None and status.get("state") != state:
                continue
            if name is not None and scenario_name != name:
                continue
            out.append({"run_id": run_id, "scenario": scenario_name, **status})
        end = None if limit is None else offset + limit
        return out[offset:end]

    def count(self, state: str | None = None, name: str | None = None) -> int:
        """Number of registered runs matching the filters (for pagination)."""
        ledger = self._synced_ledger()
        if ledger is not None:
            try:
                return ledger.count(state=state, name=name)
            except (sqlite3.Error, OSError):
                self._count_ledger_error()
        return len(self._query_scan(state, name))

    def failures(self) -> list[dict]:
        """The FAILURES view: failed and quarantined runs, newest first."""
        ledger = self._synced_ledger()
        if ledger is not None:
            try:
                return ledger.failures()
            except (sqlite3.Error, OSError):
                self._count_ledger_error()
        rows = [
            r
            for r in self._query_scan(None, None)
            if r.get("state") in ("failed", "quarantined")
        ]
        rows.reverse()
        return rows

    def _load_scenario(self, root: Path) -> Scenario:
        path = root / SCENARIO_NAME
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ConfigurationError(f"{root} has no {SCENARIO_NAME}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"unreadable {path}: {exc}") from exc
        return scenario_from_jsonable(doc, source=str(path))

    def manifest(self, run_id: str) -> dict:
        """The stored run manifest."""
        path = self.run_dir(run_id) / MANIFEST_NAME
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable manifest {path}: {exc}") from exc

    # -- status / journal --------------------------------------------------

    def status(self, run_id: str) -> dict:
        """The run's current status record ({} when missing)."""
        try:
            return json.loads((self.run_dir(run_id) / STATUS_NAME).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def set_state(self, run_id: str, state: str, **extra) -> None:
        """Atomically update the run's state (one of :data:`RUN_STATES`).

        ``status.json`` is written first (source of truth), then the
        transition is mirrored into the sqlite ledger best-effort -- a
        SIGKILL between the two leaves the index one transition stale,
        repaired by reconciliation at the next startup.
        """
        if state not in RUN_STATES:
            raise ConfigurationError(
                f"unknown run state {state!r}; known: {RUN_STATES}"
            )
        record = {"state": state, "updated": round(time.time(), 3), **extra}
        atomic_write_text(
            self.run_dir(run_id) / STATUS_NAME,
            json.dumps(record, sort_keys=True),
        )
        err = extra.get("error")
        self._ledger_record(
            run_id, state, error=str(err) if err is not None else None
        )

    def append_journal(self, run_id: str, record: dict) -> None:
        """Append one event to the run's journal."""
        line = json.dumps({"ts": round(time.time(), 3), **record}, sort_keys=True)
        with open(self.run_dir(run_id) / JOURNAL_NAME, "a") as fh:
            fh.write(line + "\n")

    def journal(self, run_id: str) -> list[dict]:
        """All parseable journal records (torn tail skipped)."""
        try:
            lines = (self.run_dir(run_id) / JOURNAL_NAME).read_text().splitlines()
        except FileNotFoundError:
            return []
        records = []
        for line in lines:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    # -- cooperative cancellation (crosses process boundaries) --------------

    def cancel_path(self, run_id: str) -> Path:
        """Where a run's ``CANCEL`` marker file lives."""
        return self.run_dir(run_id) / CANCEL_NAME

    def request_cancel(self, run_id: str) -> None:
        """Drop the cancel marker; pollers stop between cells."""
        self.cancel_path(run_id).touch()

    def cancel_requested(self, run_id: str) -> bool:
        """Whether the run's cancel marker is present."""
        return self.cancel_path(run_id).exists()

    def clear_cancel(self, run_id: str) -> None:
        """Remove any cancel marker (on submit and settled cancels)."""
        self.cancel_path(run_id).unlink(missing_ok=True)

    # -- attempts / quarantine ----------------------------------------------

    def record_attempt(self, run_id: str) -> int:
        """Count one dispatch attempt in the ledger; returns the total."""
        try:
            return self.ledger.record_attempt(run_id)
        except (sqlite3.Error, OSError):
            self._count_ledger_error()
            return 0

    def quarantine(self, run_id: str, reason: str, kind: str = "poison") -> None:
        """Park a run where it can do no harm (never auto-retried/served).

        *kind* labels the telemetry counter: ``poison`` (exhausted its
        retry budget or failed permanently) or ``tamper`` (stored bytes
        failed verify-on-read).
        """
        self.set_state(run_id, "quarantined", error=reason)
        self.append_journal(
            run_id, {"event": "quarantined", "kind": kind, "reason": reason}
        )
        telemetry.get_telemetry().counter(
            "service_runs_quarantined_total", kind=kind
        ).inc()

    def progress(self, run_id: str) -> dict:
        """Cells-done progress derived from the journal."""
        done = 0
        total = None
        for record in self.journal(run_id):
            if record.get("event") == "cell":
                done = max(done, record.get("index", 0) + 1)
                total = record.get("of", total)
            elif record.get("event") == "started":
                total = record.get("cells", total)
                done = 0
        return {"cells_done": done, "cells_total": total, **self.status(run_id)}

    # -- tables ------------------------------------------------------------

    def save_table(self, run_id: str, table: Table) -> str:
        """Checksum and store the run's result table; returns the digest."""
        payload = table_payload(table)
        digest = payload_checksum(payload)
        root = self.run_dir(run_id)
        (root / TABLES_SUBDIR).mkdir(exist_ok=True)
        atomic_write_text(
            root / TABLES_SUBDIR / f"{table.name}.json",
            json.dumps(
                {"checksum": digest, "table": json.loads(payload)},
                sort_keys=True,
                separators=(",", ":"),
            ),
        )
        atomic_write_text(root / f"{table.name}.txt", table.render() + "\n")
        atomic_write_text(root / f"{table.name}.csv", table.to_csv() + "\n")
        return digest

    def load_table(self, run_id: str) -> Table:
        """Load and integrity-check the stored result table.

        Raises :class:`ChecksumMismatchError` on a tampered or bit-rotted
        payload -- the tamper detection the CI service smoke exercises.
        """
        path = self.run_dir(run_id) / TABLES_SUBDIR / f"{TABLE_NAME}.json"
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ConfigurationError(
                f"run {run_id} has no stored result table ({path})"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ChecksumMismatchError(
                f"stored table {path} is not valid JSON ({exc})"
            ) from exc
        table = Table.from_jsonable(data["table"])
        digest = payload_checksum(table_payload(table))
        if digest != data.get("checksum"):
            raise ChecksumMismatchError(
                f"stored table {path} failed integrity verification "
                f"(stored {data.get('checksum')!r}, recomputed {digest!r})"
            )
        return table

    def serve_table(self, run_id: str) -> Table:
        """Verify-on-read: integrity-check the table, quarantining on failure.

        The service's results path.  A table whose bytes fail the stored
        checksum is never served: the run flips to ``quarantined`` (with
        the mismatch recorded) and the :class:`ChecksumMismatchError`
        propagates to the caller -- tampered data cannot reach a client,
        and the FAILURES view names the poisoned run.
        """
        try:
            return self.load_table(run_id)
        except ChecksumMismatchError as exc:
            if self.status(run_id).get("state") != "quarantined":
                self.quarantine(run_id, str(exc), kind="tamper")
            raise

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        record: RunRecord,
        jobs: int = 1,
        should_cancel=None,
        force: bool = False,
    ) -> str:
        """Run a registered scenario to completion; returns the final state.

        Cells execute one at a time through the supervised sharded
        scheduler (block checkpoints under ``shards/`` make a killed run
        resumable), journaling per-cell progress.  *should_cancel* is
        polled between cells for cooperative cancellation; the run's
        on-disk ``CANCEL`` marker is always polled too, so a cancel
        request reaches an executor in another process.  A run already
        ``done`` is a no-op unless *force* re-executes it (results are
        deterministic, so the tables cannot change).
        """
        run_id = record.run_id
        if not force and self.status(run_id).get("state") == "done":
            return "done"
        scenario = record.scenario
        specs = expand(scenario)
        self.set_state(run_id, "running")
        self.append_journal(run_id, {"event": "started", "cells": len(specs)})
        started = time.monotonic()
        cancel_path = self.cancel_path(run_id)
        user_cancel = should_cancel

        def should_cancel() -> bool:
            if cancel_path.exists():
                return True
            return user_cancel is not None and user_cancel()

        try:
            results = self._run_specs(record, specs, jobs, should_cancel)
            if results is None:
                self.set_state(run_id, "cancelled")
                self.append_journal(run_id, {"event": "cancelled"})
                self.clear_cancel(run_id)
                self._count_job("cancelled")
                return "cancelled"
            table = results_table(scenario, specs, results)
            digest = self.save_table(run_id, table)
            self.set_state(run_id, "done", table_checksum=digest)
            self.append_journal(run_id, {"event": "done", "table_checksum": digest})
            self._count_job("done", time.monotonic() - started)
            return "done"
        except Exception as exc:
            self.set_state(run_id, "failed", error=str(exc))
            self.append_journal(
                run_id, {"event": "failed", "error": f"{type(exc).__name__}: {exc}"}
            )
            self._count_job("failed", time.monotonic() - started)
            raise

    def _run_specs(
        self, record: RunRecord, specs: list[CellSpec], jobs: int, should_cancel
    ) -> list[list] | None:
        """Execute cells one by one; None when cancelled between cells."""
        scenario = record.scenario
        collected: list[list] = []
        tel_scope = (
            telemetry.collecting(stride=scenario.telemetry_stride)
            if scenario.telemetry_enabled
            else None
        )
        try:
            tel = tel_scope.__enter__() if tel_scope is not None else None
            for i, spec in enumerate(specs):
                if should_cancel is not None and should_cancel():
                    return None
                cell_results, _shards, _report = run_cells_sharded_report(
                    [spec],
                    jobs=jobs,
                    block_size=scenario.block_size,
                    checkpoint_dir=record.shards_dir,
                )
                collected.append(cell_results[0])
                self.append_journal(
                    record.run_id,
                    {"event": "cell", "index": i, "of": len(specs),
                     "kind": spec.kind, "n": spec.n, "adversary": spec.adversary},
                )
        finally:
            if tel_scope is not None:
                tel_scope.__exit__(None, None, None)
        if tel is not None:
            tel_dir = record.root / "telemetry"
            tel_dir.mkdir(exist_ok=True)
            telemetry.write_jsonl(tel_dir / "telemetry.jsonl", tel)
            atomic_write_text(
                tel_dir / "metrics.prom", telemetry.prometheus_text(tel.metrics)
            )
        return collected

    @staticmethod
    def _count_job(state: str, seconds: float | None = None) -> None:
        tel = telemetry.get_telemetry()
        tel.counter("service_jobs_total", state=state).inc()
        if seconds is not None:
            tel.histogram(
                "service_job_seconds", buckets=telemetry.SECONDS_BUCKETS
            ).observe(seconds)

    # -- integrity / replay ------------------------------------------------

    def verify(self, run_id: str) -> None:
        """Integrity-check a stored run without re-executing it.

        Confirms the scenario document still matches the manifest's
        content digest and the stored table passes its checksum.  Raises
        :class:`ChecksumMismatchError` / :class:`ConfigurationError`.
        """
        record = self.get(run_id)
        stored_digest = self.manifest(run_id).get("scenario_digest")
        digest = scenario_digest(record.scenario)
        if digest != stored_digest:
            raise ChecksumMismatchError(
                f"run {run_id}: scenario.json digests to {digest}, but the "
                f"manifest records {stored_digest}; the document was altered"
            )
        self.load_table(run_id)

    def replay(self, run_id: str, jobs: int = 1) -> ReplayReport:
        """Bit-replay a stored run from its manifest and scenario alone.

        Verifies integrity (:meth:`verify`), re-expands the scenario,
        recomputes every cell in memory (no checkpoints consulted, any
        worker count), and compares the recomputed table's canonical
        payload byte-for-byte against the stored one.
        """
        record = self.get(run_id)
        self.verify(run_id)
        stored = self.load_table(run_id)
        scenario = record.scenario
        specs = expand(scenario)
        results, _shards, _report = run_cells_sharded_report(
            specs, jobs=jobs, block_size=scenario.block_size
        )
        recomputed = results_table(scenario, specs, results)
        stored_payload = table_payload(stored)
        new_payload = table_payload(recomputed)
        if stored_payload == new_payload:
            return ReplayReport(
                run_id=run_id,
                identical=True,
                detail=(
                    f"{len(specs)} cells x {scenario.reps} reps recomputed; "
                    "result tables byte-identical"
                ),
            )
        diffs = [
            f"row {i}: stored {s} != recomputed {r}"
            for i, (s, r) in enumerate(zip(stored.rows, recomputed.rows))
            if s != r
        ]
        if len(stored.rows) != len(recomputed.rows):
            diffs.append(
                f"row count {len(stored.rows)} != {len(recomputed.rows)}"
            )
        return ReplayReport(
            run_id=run_id,
            identical=False,
            detail="; ".join(diffs) or "payload metadata differs",
        )

"""Durable sqlite job ledger: the run store's O(1) index.

The ledger (``STORE_ROOT/ledger.db``) records every run's current state,
attempt count, and content digest plus an append-only log of state
transitions.  It exists so the service never has to walk ``runs/*/`` and
parse one ``status.json`` per run just to answer ``/v1/runs`` -- listing,
filtering, and pagination are single indexed SQL queries regardless of
how many runs the store has accumulated.

Design rules (the same discipline as the shard checkpoints):

* **The store is the source of truth, the ledger is the index.**  Every
  write lands in ``status.json`` (atomic tmp+rename) *first* and in the
  ledger second; a daemon SIGKILLed between the two leaves the ledger at
  most one transition stale, which :meth:`RunLedger.reconcile` repairs
  on the next startup by replaying the directory state into the index.
* **Crash safety via WAL.**  The database runs in write-ahead-log mode
  with ``synchronous=NORMAL`` -- a torn write cannot corrupt committed
  rows, and readers (the HTTP threads) never block the writer.
* **Multi-process friendly.**  Worker *processes* executing runs update
  run state through their own connections; a generous busy timeout keeps
  concurrent commits from surfacing as ``database is locked``.
* **Best-effort by contract.**  Callers in :mod:`repro.service.store`
  treat every ledger failure as "fall back to the directory walk"; a
  corrupt or unwritable ledger degrades listing performance, never
  correctness.

The ``failures`` SQL view is the poison-run quarantine surface: every
run whose state is ``failed`` or ``quarantined``, with its attempt count
and last recorded error, newest first.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

__all__ = ["LEDGER_NAME", "LEDGER_SCHEMA_VERSION", "RunLedger"]

LEDGER_NAME = "ledger.db"

#: Schema version stamped into the ``meta`` table; bumping it recreates
#: the index (cheap -- it is derivable from the store).
LEDGER_SCHEMA_VERSION = 1

_BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    seq      INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id   TEXT NOT NULL UNIQUE,
    scenario TEXT,
    digest   TEXT,
    state    TEXT NOT NULL,
    attempts INTEGER NOT NULL DEFAULT 0,
    error    TEXT,
    updated  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_state ON runs(state);
CREATE TABLE IF NOT EXISTS transitions (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    state  TEXT NOT NULL,
    ts     REAL NOT NULL,
    detail TEXT
);
CREATE INDEX IF NOT EXISTS transitions_run ON transitions(run_id);
CREATE VIEW IF NOT EXISTS failures AS
    SELECT run_id, scenario, state, attempts, error, updated
    FROM runs WHERE state IN ('failed', 'quarantined')
    ORDER BY seq DESC;
"""

_ROW_KEYS = ("run_id", "scenario", "state", "attempts", "error", "updated")


class RunLedger:
    """One store's sqlite index (see the module docstring).

    A single connection per instance, guarded by a lock so the HTTP
    handler threads and the dispatcher can share it; separate processes
    open their own instances against the same file (WAL handles the
    concurrency).  All methods raise :class:`sqlite3.Error` / ``OSError``
    on an unusable database -- the store catches these and falls back to
    directory scans.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.Lock()

    # -- connection --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None:
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path),
            timeout=_BUSY_TIMEOUT_MS / 1000,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        conn.executescript(_SCHEMA)
        stored = conn.execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()
        if stored is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES('schema', ?)",
                (str(LEDGER_SCHEMA_VERSION),),
            )
        elif stored["value"] != str(LEDGER_SCHEMA_VERSION):
            # The index is derivable: wipe and let reconcile rebuild it.
            conn.executescript(
                "DROP VIEW IF EXISTS failures;"
                "DROP TABLE IF EXISTS transitions;"
                "DROP TABLE IF EXISTS runs;"
            )
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES('schema', ?)",
                (str(LEDGER_SCHEMA_VERSION),),
            )
        self._conn = conn
        return conn

    def close(self) -> None:
        """Close the sqlite handle; the next call transparently reopens."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- writes ------------------------------------------------------------

    def record(
        self,
        run_id: str,
        state: str,
        scenario: str | None = None,
        digest: str | None = None,
        error: str | None = None,
        detail: str | None = None,
    ) -> None:
        """Upsert a run's current state and append the transition."""
        now = round(time.time(), 3)
        with self._lock:
            conn = self._connect()
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    """
                    INSERT INTO runs(run_id, scenario, digest, state, error, updated)
                    VALUES(?, ?, ?, ?, ?, ?)
                    ON CONFLICT(run_id) DO UPDATE SET
                        state=excluded.state,
                        error=excluded.error,
                        updated=excluded.updated,
                        scenario=COALESCE(excluded.scenario, runs.scenario),
                        digest=COALESCE(excluded.digest, runs.digest)
                    """,
                    (run_id, scenario, digest, state, error, now),
                )
                conn.execute(
                    "INSERT INTO transitions(run_id, state, ts, detail) "
                    "VALUES(?, ?, ?, ?)",
                    (run_id, state, now, detail),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def annotate(
        self,
        run_id: str,
        scenario: str | None = None,
        digest: str | None = None,
    ) -> None:
        """Backfill scenario/digest metadata without logging a transition."""
        with self._lock:
            self._connect().execute(
                "UPDATE runs SET scenario=COALESCE(?, scenario), "
                "digest=COALESCE(?, digest) WHERE run_id=?",
                (scenario, digest, run_id),
            )

    def record_attempt(self, run_id: str) -> int:
        """Bump a run's dispatch-attempt counter; returns the new count."""
        with self._lock:
            conn = self._connect()
            conn.execute(
                "UPDATE runs SET attempts = attempts + 1 WHERE run_id = ?",
                (run_id,),
            )
            row = conn.execute(
                "SELECT attempts FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            return int(row["attempts"]) if row else 0

    def forget(self, run_id: str) -> None:
        """Drop a run (directory vanished) from the index."""
        with self._lock:
            conn = self._connect()
            conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
            conn.execute("DELETE FROM transitions WHERE run_id = ?", (run_id,))

    # -- reads -------------------------------------------------------------

    @staticmethod
    def _filters(state: str | None, name: str | None) -> tuple[str, list]:
        clauses, params = [], []
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if name is not None:
            clauses.append("scenario = ?")
            params.append(name)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def query(
        self,
        state: str | None = None,
        name: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[dict]:
        """Run summaries in stable registration (``seq``) order."""
        where, params = self._filters(state, name)
        sql = f"SELECT * FROM runs{where} ORDER BY seq"
        if limit is not None or offset:
            sql += " LIMIT ? OFFSET ?"
            params += [-1 if limit is None else limit, offset]
        with self._lock:
            rows = self._connect().execute(sql, params).fetchall()
        return [{k: row[k] for k in _ROW_KEYS} for row in rows]

    def count(self, state: str | None = None, name: str | None = None) -> int:
        """Number of runs matching the filters."""
        where, params = self._filters(state, name)
        with self._lock:
            row = self._connect().execute(
                f"SELECT COUNT(*) AS n FROM runs{where}", params
            ).fetchone()
        return int(row["n"])

    def states(self) -> dict[str, int]:
        """Run counts per state (the healthz summary)."""
        with self._lock:
            rows = self._connect().execute(
                "SELECT state, COUNT(*) AS n FROM runs GROUP BY state"
            ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    def failures(self) -> list[dict]:
        """The quarantine/failure view: failed + quarantined runs."""
        with self._lock:
            rows = self._connect().execute("SELECT * FROM failures").fetchall()
        return [dict(row) for row in rows]

    def transitions(self, run_id: str) -> list[dict]:
        """A run's recorded state transitions, oldest first."""
        with self._lock:
            rows = self._connect().execute(
                "SELECT state, ts, detail FROM transitions "
                "WHERE run_id = ? ORDER BY seq",
                (run_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    # -- reconciliation ----------------------------------------------------

    def reconcile(self, runs_dir: str | Path) -> dict:
        """Replay the store directory into the index; returns a summary.

        The one place the service still walks ``runs/*/`` -- called once
        at daemon startup (and lazily when the index looks out of sync)
        so that a SIGKILLed predecessor, a hand-edited store, or a
        deleted ledger all converge back to directory truth.  Scenario
        names already indexed are not re-read from disk.
        """
        runs_dir = Path(runs_dir)
        on_disk: dict[str, Path] = (
            {p.name: p for p in sorted(runs_dir.iterdir()) if p.is_dir()}
            if runs_dir.is_dir()
            else {}
        )
        with self._lock:
            conn = self._connect()
            indexed = {
                row["run_id"]: dict(row)
                for row in conn.execute("SELECT * FROM runs").fetchall()
            }
        summary = {"added": 0, "updated": 0, "dropped": 0, "total": len(on_disk)}
        for run_id in set(indexed) - set(on_disk):
            self.forget(run_id)
            summary["dropped"] += 1
        for run_id, root in on_disk.items():
            status = _read_json(root / "status.json")
            state = status.get("state", "queued")
            error = status.get("error")
            row = indexed.get(run_id)
            if row is not None and row["state"] == state and row["error"] == error:
                continue
            scenario = digest = None
            if row is None or not row["scenario"]:
                doc = _read_json(root / "scenario.json")
                scenario = doc.get("scenario")
            if row is None or not row["digest"]:
                manifest = _read_json(root / "manifest.json")
                digest = manifest.get("scenario_digest")
            self.record(
                run_id, state, scenario=scenario, digest=digest,
                error=error, detail="reconciled",
            )
            summary["added" if row is None else "updated"] += 1
        return summary


def _read_json(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return data if isinstance(data, dict) else {}

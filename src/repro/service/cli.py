"""CLI for the service stack: ``repro scenario ...`` and ``repro serve``.

``scenario`` subcommands operate either directly on a store
(``--store DIR``) or against a live service (``--url http://host:port``):

* ``validate FILE...``  parse + validate; print digest and cell count
* ``run FILE``          register and execute synchronously in-process
* ``submit FILE``       enqueue on a live service (HTTP) or local store
* ``status RUN_ID``     state + journal-derived progress
* ``results RUN_ID``    fetch the result table (``--format json|txt|csv``)
* ``replay RUN_ID``     bit-replay; exit 0 iff the recomputed table is
                        byte-identical to the stored one (tampered or
                        bit-rotted stores exit nonzero)
* ``list``              enumerate registered runs (``--state``,
                        ``--limit``/``--offset`` pagination,
                        ``--failures`` for the quarantine view)

``submit --url`` retries 429 (queue full) and 503 (degraded) responses
with bounded seeded backoff, honoring the server's ``Retry-After``
hint, before giving up.

``serve`` runs the long-lived job daemon: bounded queue, a supervised
worker-process fleet (per-run deadlines, heartbeats, crash requeue,
quarantine -- ``--worker-mode thread`` restores the PR 8 in-process
path), a sqlite ledger reconciled on boot (crash recovery, even from
SIGKILL), HTTP API, and a SIGTERM handler that drains the queue before
exiting.  ``--inject-faults`` arms the service chaos layer
(``worker:kill@SEQ``, ``worker:hang@SEQ``, ``store:tamper@SEQ``,
``disk:full@SEQ``).

Exit codes follow the repo convention: 0 success, 1 failure (validation
error, divergent replay, failed run), 130 interrupted.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
import urllib.error
import urllib.request

from repro.errors import ChecksumMismatchError, ConfigurationError
from repro.experiments.checkpoint import cli_invocation
from repro.service.scenario import expand, load_scenario, scenario_digest

__all__ = ["main", "serve_main"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


# -- HTTP client helpers ----------------------------------------------------


def _request(
    method: str, url: str, body: bytes | None = None
) -> tuple[int, str, dict]:
    req = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, resp.read().decode(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), dict(exc.headers or {})
    except urllib.error.URLError as exc:
        raise ConfigurationError(f"cannot reach service at {url}: {exc.reason}")


def _print_response(status: int, body: str, headers: dict | None = None) -> int:
    print(body.rstrip("\n"))
    return 0 if status < 400 else 1


# -- scenario subcommands ---------------------------------------------------


def _store(args: argparse.Namespace):
    from repro.service.store import RunStore

    if args.store is None:
        raise ConfigurationError(
            "this invocation needs --store DIR (or --url for a live service)"
        )
    return RunStore(args.store)


def _cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.files:
        try:
            scenario = load_scenario(path)
        except ConfigurationError as exc:
            print(exc, file=sys.stderr)
            failures += 1
            continue
        print(
            f"{path}: ok -- scenario {scenario.name!r}, "
            f"{scenario.cell_count} cells x {scenario.reps} reps, "
            f"digest {scenario_digest(scenario)}"
        )
    return 1 if failures else 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.file)
    store = _store(args)
    record, created = store.register(
        scenario, invocation=cli_invocation("scenario run", args.argv)
    )
    print(
        f"run {record.run_id} ({'registered' if created else 'exists'}) "
        f"in {record.root}"
    )
    state = store.execute(record, jobs=args.jobs, force=args.force)
    if state == "done":
        print(store.load_table(record.run_id).render())
        return 0
    print(f"run {record.run_id} finished {state}", file=sys.stderr)
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    if args.url:
        body = open(args.file, "rb").read()
        return _submit_with_retry(args, body)
    scenario = load_scenario(args.file)
    store = _store(args)
    record, created = store.register(
        scenario, invocation=cli_invocation("scenario submit", args.argv)
    )
    print(
        json.dumps(
            {
                "run_id": record.run_id,
                "created": created,
                "state": store.status(record.run_id).get("state"),
            },
            sort_keys=True,
        )
    )
    return 0


def _submit_with_retry(args: argparse.Namespace, body: bytes) -> int:
    """POST a scenario, retrying 429/503 with bounded seeded backoff.

    Backpressure is the service working as designed, so the client's
    default is to wait it out: up to ``--retries`` attempts, sleeping
    the deterministic :class:`~repro.experiments.retry.RetryPolicy`
    delay or the server's ``Retry-After`` hint, whichever is larger.
    """
    from repro.experiments.retry import RetryPolicy

    policy = RetryPolicy(
        max_attempts=max(1, args.retries), backoff_base=args.backoff,
        backoff_cap=30.0,
    )
    url = f"{args.url}/v1/scenarios"
    for attempt in range(1, policy.max_attempts + 1):
        status, text, headers = _request("POST", url, body)
        if status not in (429, 503) or attempt == policy.max_attempts:
            return _print_response(status, text, headers)
        delay = policy.delay("submit", attempt)
        try:
            delay = max(delay, float(headers.get("Retry-After", 0)))
        except (TypeError, ValueError):
            pass
        print(
            f"service busy (HTTP {status}); retrying in {delay:.1f}s "
            f"(attempt {attempt}/{policy.max_attempts})",
            file=sys.stderr,
        )
        time.sleep(delay)
    raise AssertionError("unreachable")


def _cmd_status(args: argparse.Namespace) -> int:
    if args.url:
        return _print_response(
            *_request("GET", f"{args.url}/v1/runs/{args.run_id}")
        )
    store = _store(args)
    record = store.get(args.run_id)
    print(json.dumps(store.progress(record.run_id), sort_keys=True))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    if args.url:
        return _print_response(
            *_request(
                "GET",
                f"{args.url}/v1/runs/{args.run_id}/results?format={args.format}",
            )
        )
    store = _store(args)
    record = store.get(args.run_id)
    state = store.status(record.run_id).get("state")
    if state != "done":
        print(f"run {record.run_id} is {state!r}, not 'done'", file=sys.stderr)
        return 1
    table = store.load_table(record.run_id)
    if args.format == "txt":
        print(table.render())
    elif args.format == "csv":
        print(table.to_csv())
    else:
        print(json.dumps(table.to_jsonable(), sort_keys=True))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.url:
        return _print_response(
            *_request("POST", f"{args.url}/v1/runs/{args.run_id}/replay")
        )
    store = _store(args)
    report = store.replay(args.run_id, jobs=args.jobs)
    print(report.describe())
    return 0 if report.identical else 1


def _cmd_list(args: argparse.Namespace) -> int:
    if args.url:
        if args.failures:
            return _print_response(*_request("GET", f"{args.url}/v1/failures"))
        params = [
            f"{key}={value}"
            for key, value in (
                ("state", args.state),
                ("limit", args.limit),
                ("offset", args.offset),
            )
            if value is not None
        ]
        query = f"?{'&'.join(params)}" if params else ""
        return _print_response(*_request("GET", f"{args.url}/v1/runs{query}"))
    store = _store(args)
    if args.failures:
        rows = store.failures()
    else:
        rows = store.query(
            state=args.state, limit=args.limit, offset=args.offset or 0
        )
    for summary in rows:
        print(json.dumps(summary, sort_keys=True))
    return 0


def _add_locator(p: argparse.ArgumentParser) -> None:
    p.add_argument("--store", default=None, help="run store directory")
    p.add_argument(
        "--url", default=None, help="live service base URL (e.g. http://127.0.0.1:8765)"
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro scenario ...`` entry point."""
    argv = sys.argv[1:] if argv is None else argv
    parser = argparse.ArgumentParser(
        prog="repro scenario", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate scenario documents")
    p.add_argument("files", nargs="+", help="scenario YAML/JSON files")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser("run", help="register and execute a scenario in-process")
    p.add_argument("file", help="scenario YAML/JSON file")
    p.add_argument("--store", required=True, help="run store directory")
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument(
        "--force", action="store_true", help="re-execute even if already done"
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("submit", help="register (and on a live service, enqueue)")
    p.add_argument("file", help="scenario YAML/JSON file")
    p.add_argument(
        "--retries", type=int, default=5,
        help="attempts before giving up on 429/503 (--url mode)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.5,
        help="base seconds for the seeded retry backoff (--url mode)",
    )
    _add_locator(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("status", help="run state and progress")
    p.add_argument("run_id", help="run id or unique prefix")
    _add_locator(p)
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser("results", help="fetch the result table")
    p.add_argument("run_id", help="run id or unique prefix")
    p.add_argument("--format", default="txt", choices=("json", "txt", "csv"))
    _add_locator(p)
    p.set_defaults(fn=_cmd_results)

    p = sub.add_parser(
        "replay", help="bit-replay a stored run (exit 0 iff byte-identical)"
    )
    p.add_argument("run_id", help="run id or unique prefix")
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    _add_locator(p)
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("list", help="enumerate registered runs")
    p.add_argument("--state", default=None, help="filter by run state")
    p.add_argument(
        "--limit", type=int, default=None, help="page size (stable ordering)"
    )
    p.add_argument("--offset", type=int, default=None, help="page start")
    p.add_argument(
        "--failures", action="store_true",
        help="show the FAILURES view (failed + quarantined runs)",
    )
    _add_locator(p)
    p.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    args.argv = ["scenario", *argv]
    try:
        return args.fn(args)
    except ChecksumMismatchError as exc:
        print(f"integrity violation: {exc}", file=sys.stderr)
        return 1
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


# -- serve ------------------------------------------------------------------


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve`` entry point: the long-lived job daemon."""
    argv = sys.argv[1:] if argv is None else argv
    parser = argparse.ArgumentParser(
        prog="repro serve", description="run the scenario job service"
    )
    parser.add_argument("--store", required=True, help="run store directory")
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes per run"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="concurrent runs"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=16, help="max pending runs (backpressure)"
    )
    parser.add_argument(
        "--worker-mode", choices=("process", "thread"), default="process",
        help="run executor substrate: supervised worker processes "
        "(default) or the legacy in-process threads",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None,
        help="per-run wall-clock deadline in seconds (process mode); a run "
        "past it is killed, requeued with backoff, then quarantined",
    )
    parser.add_argument(
        "--degraded-after", type=int, default=3,
        help="consecutive worker failures before submissions get 503",
    )
    parser.add_argument(
        "--inject-faults", default="",
        help="service chaos plan, e.g. 'worker:kill@1,disk:full@2' "
        "(worker:kill/hang, store:tamper, disk:full; @N is the fleet-wide "
        "dispatch sequence)",
    )
    parser.add_argument(
        "--telemetry", action="store_true", help="enable the live metrics registry"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    args = parser.parse_args(argv)

    from repro import telemetry
    from repro.service.api import make_server
    from repro.service.chaos import ServiceFaultPlan
    from repro.service.jobs import JobService
    from repro.service.store import RunStore

    if args.telemetry:
        telemetry.configure()
    if args.inject_faults:
        ServiceFaultPlan.from_spec(args.inject_faults)  # fail fast on typos
    service = JobService(
        RunStore(args.store),
        jobs_per_run=args.jobs,
        queue_limit=args.queue_limit,
        workers=args.workers,
        worker_mode=args.worker_mode,
        run_timeout=args.run_timeout,
        degraded_after=args.degraded_after,
        fault_spec=args.inject_faults,
    )
    service.start()
    server = make_server(service, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port} "
          f"(store {args.store})", flush=True)

    def _shutdown(signum, frame):  # SIGTERM drains, then exits
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("draining job queue before shutdown...", flush=True)
    finally:
        service.stop(drain=True)
        server.server_close()
    print("service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Declarative scenario documents: the service's input language.

A *scenario* is a schema-versioned YAML/JSON document that composes
protocol (cell kind) x adversary x fault model x ``n``/``eps``/``T``
grids plus engine, sharding, and telemetry options into a validated list
of :class:`~repro.experiments.cells.CellSpec` cells::

    scenario: lesk-vs-adaptive
    schema: 1
    seed: 1234
    grid:
      kind: [lesk, lesu]
      n: [64, 128]
      eps: [0.3]
      T: [16]
      adversary: [random, saturating]
    reps: 64
    engine: {batched: true}
    sharding: {block_size: 64}

Validation is strict and total: every problem is reported with the path
of the offending key (``grid.adversary[1]: unknown adversary ...``),
unknown keys are rejected at every level, adversary names are checked
against :func:`repro.adversary.suite.strategy_names`, cell kinds against
:data:`repro.experiments.cells.CELL_KINDS`, the ``faults`` section
round-trips through :meth:`repro.resilience.faults.FaultModel
.from_jsonable`, and grid-size/budget sanity is enforced against the
``limits`` section.

A validated scenario fully determines its bitstream: :func:`expand`
derives every cell's seed path as ``(path_tag, ordinal)`` in fixed
kind -> adversary -> n -> eps -> T grid order, and execution always
takes the sharded path whose block seeds depend only on the document
(``(root_seed, *path, SHARD_BLOCK_TAG, block)``).  The canonical
content digest (:func:`scenario_digest`) covers exactly the
result-determining fields -- ``telemetry`` and ``limits`` are excluded
-- so it is the natural run-store key (:mod:`repro.service.store`).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.adversary.suite import strategy_names
from repro.errors import ConfigurationError
from repro.experiments.cells import CELL_KINDS, CellSpec
from repro.resilience.faults import FaultModel

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "DEFAULT_MAX_CELLS",
    "DEFAULT_MAX_TOTAL_REPS",
    "Scenario",
    "parse_scenario",
    "load_scenario",
    "scenario_from_jsonable",
    "expand",
    "scenario_digest",
]

#: The scenario document schema this build reads and writes.
SCENARIO_SCHEMA_VERSION = 1

#: Default grid-size guardrails (overridable via the ``limits`` section).
DEFAULT_MAX_CELLS = 4096
DEFAULT_MAX_TOTAL_REPS = 1 << 20

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)

_TOP_KEYS = {
    "scenario", "schema", "seed", "path_tag", "grid", "reps",
    "engine", "sharding", "faults", "telemetry", "limits",
}
_GRID_KEYS = {"kind", "n", "eps", "T", "adversary"}
_ENGINE_KEYS = {"batched", "max_slots", "compact_interval"}
_SHARDING_KEYS = {"block_size"}
_TELEMETRY_KEYS = {"enabled", "stride"}
_LIMITS_KEYS = {"max_cells", "max_total_reps"}


@dataclass(frozen=True, slots=True)
class Scenario:
    """A validated, normalized scenario document.

    Construct via :func:`parse_scenario` / :func:`load_scenario` /
    :func:`scenario_from_jsonable` -- direct construction skips
    validation and is reserved for the compilers in this package.
    """

    name: str
    schema: int
    seed: int
    path_tag: int
    kinds: tuple[str, ...]
    ns: tuple[int, ...]
    epss: tuple[float, ...]
    Ts: tuple[int, ...]
    adversaries: tuple[str, ...]
    reps: int
    batched: bool
    max_slots: int | None
    compact_interval: int | None
    block_size: int
    faults: FaultModel | None
    telemetry_enabled: bool
    telemetry_stride: int
    max_cells: int
    max_total_reps: int

    @property
    def cell_count(self) -> int:
        """Cells in the grid (product of the five axis lengths)."""
        return (
            len(self.kinds) * len(self.adversaries) * len(self.ns)
            * len(self.epss) * len(self.Ts)
        )

    def to_jsonable(self) -> dict:
        """The full normalized document (defaults made explicit)."""
        doc = self.canonical_jsonable()
        doc["telemetry"] = {
            "enabled": self.telemetry_enabled,
            "stride": self.telemetry_stride,
        }
        doc["limits"] = {
            "max_cells": self.max_cells,
            "max_total_reps": self.max_total_reps,
        }
        return doc

    def canonical_jsonable(self) -> dict:
        """The digest payload: exactly the result-determining fields.

        ``telemetry`` and ``limits`` are excluded -- neither changes a
        single result bit -- so re-running a stored scenario with
        different observability or guardrails still addresses the same
        run.
        """
        return {
            "schema": self.schema,
            "scenario": self.name,
            "seed": self.seed,
            "path_tag": self.path_tag,
            "grid": {
                "kind": list(self.kinds),
                "adversary": list(self.adversaries),
                "n": list(self.ns),
                "eps": list(self.epss),
                "T": list(self.Ts),
            },
            "reps": self.reps,
            "engine": {
                "batched": self.batched,
                "max_slots": self.max_slots,
                "compact_interval": self.compact_interval,
            },
            "sharding": {"block_size": self.block_size},
            "faults": None if self.faults is None else self.faults.to_jsonable(),
        }

    @property
    def digest(self) -> str:
        """SHA-256 hex digest of the canonical document."""
        return scenario_digest(self)


def scenario_digest(scenario: Scenario) -> str:
    """Content address of a scenario: SHA-256 over its canonical JSON."""
    payload = json.dumps(
        scenario.canonical_jsonable(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- validation --------------------------------------------------------------


class _Report:
    """Accumulates path-qualified validation errors, then raises once."""

    def __init__(self, source: str):
        self.source = source
        self.errors: list[str] = []

    def error(self, path: str, message: str) -> None:
        self.errors.append(f"{path}: {message}")

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ConfigurationError(
                f"invalid scenario document ({self.source}):\n  "
                + "\n  ".join(self.errors)
            )


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _as_list(value) -> list:
    """Normalize a scalar axis value to a one-element list."""
    return value if isinstance(value, list) else [value]


def _check_unknown(section: dict, known: set, prefix: str, rep: _Report) -> None:
    for key in sorted(set(section) - known):
        where = f"{prefix}{key}" if prefix else str(key)
        rep.error(where, f"unknown key; known: {', '.join(sorted(known))}")


def _int_axis(values, path: str, rep: _Report, what: str) -> tuple[int, ...]:
    out = []
    for i, v in enumerate(values):
        if not _is_int(v) or v < 1:
            rep.error(f"{path}[{i}]", f"{what} must be a positive integer, got {v!r}")
        else:
            out.append(v)
    return tuple(out)


def _validate_grid(doc: dict, rep: _Report):
    grid = doc.get("grid")
    if not isinstance(grid, dict):
        rep.error("grid", f"must be a mapping of axis lists, got {type(grid).__name__}")
        return (), (), (), (), ()
    _check_unknown(grid, _GRID_KEYS, "grid.", rep)

    kinds_raw = _as_list(grid.get("kind", "lesk"))
    kinds = []
    if not kinds_raw:
        rep.error("grid.kind", "must be a non-empty list")
    for i, kind in enumerate(kinds_raw):
        if not isinstance(kind, str) or kind not in CELL_KINDS:
            rep.error(
                f"grid.kind[{i}]",
                f"unknown cell kind {kind!r}; known: {', '.join(sorted(CELL_KINDS))}",
            )
        else:
            kinds.append(kind)

    advs_raw = _as_list(grid.get("adversary", "random"))
    advs = []
    if not advs_raw:
        rep.error("grid.adversary", "must be a non-empty list")
    known_advs = strategy_names()
    for i, adv in enumerate(advs_raw):
        if not isinstance(adv, str) or adv not in known_advs:
            rep.error(
                f"grid.adversary[{i}]",
                f"unknown adversary {adv!r}; known: {', '.join(known_advs)}",
            )
        else:
            advs.append(adv)

    if "n" not in grid:
        rep.error("grid.n", "required axis is missing")
        ns: tuple[int, ...] = ()
    else:
        ns_raw = _as_list(grid["n"])
        if not ns_raw:
            rep.error("grid.n", "must be a non-empty list")
        ns = _int_axis(ns_raw, "grid.n", rep, "station count")

    epss_raw = _as_list(grid.get("eps", 0.3))
    epss = []
    if not epss_raw:
        rep.error("grid.eps", "must be a non-empty list")
    for i, eps in enumerate(epss_raw):
        if isinstance(eps, bool) or not isinstance(eps, (int, float)):
            rep.error(f"grid.eps[{i}]", f"eps must be a number in (0, 1), got {eps!r}")
        elif not (0.0 < float(eps) < 1.0) or not math.isfinite(float(eps)):
            rep.error(f"grid.eps[{i}]", f"eps must be in (0, 1), got {eps!r}")
        else:
            epss.append(float(eps))

    Ts_raw = _as_list(grid.get("T", 16))
    if not Ts_raw:
        rep.error("grid.T", "must be a non-empty list")
    Ts = _int_axis(Ts_raw, "grid.T", rep, "window parameter T")

    return tuple(kinds), tuple(advs), ns, tuple(epss), Ts


def _validate_engine(doc: dict, rep: _Report) -> tuple[bool, int | None, int | None]:
    engine = doc.get("engine", {})
    if engine is None:
        engine = {}
    if not isinstance(engine, dict):
        rep.error("engine", f"must be a mapping, got {type(engine).__name__}")
        return True, None, None
    _check_unknown(engine, _ENGINE_KEYS, "engine.", rep)
    batched = engine.get("batched", True)
    if not isinstance(batched, bool):
        rep.error("engine.batched", f"must be true or false, got {batched!r}")
        batched = True
    max_slots = engine.get("max_slots")
    if max_slots is not None and (not _is_int(max_slots) or max_slots < 1):
        rep.error(
            "engine.max_slots", f"must be a positive integer or null, got {max_slots!r}"
        )
        max_slots = None
    compact = engine.get("compact_interval")
    if compact is not None and (not _is_int(compact) or compact < 1):
        rep.error(
            "engine.compact_interval",
            f"must be a positive integer or null, got {compact!r}",
        )
        compact = None
    elif compact is not None and not batched:
        rep.error(
            "engine.compact_interval",
            "conflicts with engine.batched: false -- dead-rep compaction "
            "is a batched-engine feature; drop it or set engine.batched: true",
        )
        compact = None
    return batched, max_slots, compact


def _validate_faults(doc: dict, rep: _Report) -> FaultModel | None:
    faults = doc.get("faults")
    if faults is None:
        return None
    if not isinstance(faults, dict):
        rep.error(
            "faults",
            f"must be a FaultModel mapping or null, got {type(faults).__name__}",
        )
        return None
    try:
        model = FaultModel.from_jsonable(faults)
    except (ConfigurationError, TypeError, ValueError) as exc:
        rep.error("faults", str(exc))
        return None
    # Round-trip so the canonical document (and hence the digest) is
    # exactly what a replay will reconstruct.
    return FaultModel.from_jsonable(model.to_jsonable())


def _validate_section(
    doc: dict, key: str, known: set, defaults: dict, rep: _Report
) -> dict:
    """Validate a flat optional {str: scalar} section against defaults."""
    section = doc.get(key, {})
    if section is None:
        section = {}
    if not isinstance(section, dict):
        rep.error(key, f"must be a mapping, got {type(section).__name__}")
        return dict(defaults)
    _check_unknown(section, known, f"{key}.", rep)
    return {**defaults, **{k: v for k, v in section.items() if k in known}}


def scenario_from_jsonable(doc, source: str = "<document>") -> Scenario:
    """Validate a parsed scenario document into a :class:`Scenario`.

    Raises :class:`~repro.errors.ConfigurationError` carrying **every**
    problem found, one path-qualified line each.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"invalid scenario document ({source}): top level must be a "
            f"mapping, got {type(doc).__name__}"
        )
    rep = _Report(source)
    _check_unknown(doc, _TOP_KEYS, "", rep)

    name = doc.get("scenario")
    if not isinstance(name, str) or not name:
        rep.error("scenario", f"required: a non-empty scenario name, got {name!r}")
        name = "invalid"
    elif not set(name) <= _NAME_CHARS:
        bad = "".join(sorted(set(name) - _NAME_CHARS))
        rep.error(
            "scenario",
            f"name may only contain letters, digits, '.', '_', '-' "
            f"(offending: {bad!r})",
        )

    schema = doc.get("schema")
    if schema != SCENARIO_SCHEMA_VERSION:
        rep.error(
            "schema",
            f"unsupported scenario schema {schema!r}; this build supports "
            f"{SCENARIO_SCHEMA_VERSION}",
        )

    seed = doc.get("seed", 1234)
    if not _is_int(seed) or not (0 <= seed < 2**63):
        rep.error("seed", f"must be an integer in [0, 2**63), got {seed!r}")
        seed = 1234
    path_tag = doc.get("path_tag", 99)
    if not _is_int(path_tag) or path_tag < 0:
        rep.error("path_tag", f"must be a non-negative integer, got {path_tag!r}")
        path_tag = 99

    kinds, advs, ns, epss, Ts = _validate_grid(doc, rep)

    reps = doc.get("reps", 64)
    if not _is_int(reps) or reps < 1:
        rep.error("reps", f"must be an integer >= 1, got {reps!r}")
        reps = 1

    batched, max_slots, compact = _validate_engine(doc, rep)

    sharding = _validate_section(
        doc, "sharding", _SHARDING_KEYS, {"block_size": 64}, rep
    )
    block_size = sharding["block_size"]
    if not _is_int(block_size) or block_size < 1:
        rep.error(
            "sharding.block_size", f"must be an integer >= 1, got {block_size!r}"
        )
        block_size = 64

    faults = _validate_faults(doc, rep)

    telemetry = _validate_section(
        doc, "telemetry", _TELEMETRY_KEYS, {"enabled": False, "stride": 64}, rep
    )
    tel_enabled = telemetry["enabled"]
    if not isinstance(tel_enabled, bool):
        rep.error("telemetry.enabled", f"must be true or false, got {tel_enabled!r}")
        tel_enabled = False
    tel_stride = telemetry["stride"]
    if not _is_int(tel_stride) or tel_stride < 1:
        rep.error("telemetry.stride", f"must be an integer >= 1, got {tel_stride!r}")
        tel_stride = 64

    limits = _validate_section(
        doc,
        "limits",
        _LIMITS_KEYS,
        {"max_cells": DEFAULT_MAX_CELLS, "max_total_reps": DEFAULT_MAX_TOTAL_REPS},
        rep,
    )
    max_cells = limits["max_cells"]
    if not _is_int(max_cells) or max_cells < 1:
        rep.error("limits.max_cells", f"must be an integer >= 1, got {max_cells!r}")
        max_cells = DEFAULT_MAX_CELLS
    max_total_reps = limits["max_total_reps"]
    if not _is_int(max_total_reps) or max_total_reps < 1:
        rep.error(
            "limits.max_total_reps",
            f"must be an integer >= 1, got {max_total_reps!r}",
        )
        max_total_reps = DEFAULT_MAX_TOTAL_REPS

    # Grid-size / budget sanity (only meaningful once the axes parsed).
    if not rep.errors:
        cells = len(kinds) * len(advs) * len(ns) * len(epss) * len(Ts)
        if cells > max_cells:
            rep.error(
                "grid",
                f"{cells} cells exceed limits.max_cells {max_cells}; shrink "
                "an axis or raise the limit explicitly",
            )
        elif cells * reps > max_total_reps:
            rep.error(
                "reps",
                f"{cells} cells x {reps} reps = {cells * reps} total "
                f"replications exceed limits.max_total_reps {max_total_reps}; "
                "lower reps or raise the limit explicitly",
            )

    rep.raise_if_failed()
    return Scenario(
        name=name,
        schema=SCENARIO_SCHEMA_VERSION,
        seed=seed,
        path_tag=path_tag,
        kinds=kinds,
        ns=ns,
        epss=epss,
        Ts=Ts,
        adversaries=advs,
        reps=reps,
        batched=batched,
        max_slots=max_slots,
        compact_interval=compact,
        block_size=block_size,
        faults=faults,
        telemetry_enabled=tel_enabled,
        telemetry_stride=tel_stride,
        max_cells=max_cells,
        max_total_reps=max_total_reps,
    )


def parse_scenario(text: str, source: str = "<string>") -> Scenario:
    """Parse and validate one YAML or JSON scenario document.

    YAML is a superset of JSON here, so a single loader covers both
    formats; syntax errors are reported with the *source* label.
    """
    import yaml

    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ConfigurationError(
            f"invalid scenario document ({source}): not parseable as "
            f"YAML/JSON -- {exc}"
        ) from exc
    return scenario_from_jsonable(doc, source=source)


def load_scenario(path: str | Path) -> Scenario:
    """Load and validate a scenario file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario file {path}: {exc}") from exc
    return parse_scenario(text, source=str(path))


def expand(scenario: Scenario) -> list[CellSpec]:
    """Compile a scenario into its deterministic :class:`CellSpec` list.

    Grid order is fixed (kind -> adversary -> n -> eps -> T) and each
    cell's seed path is ``(path_tag, ordinal)``, so the document alone
    -- never the job count, visit order, or store state -- determines
    every seed derivation.  This is the same scheme ``python -m repro
    sweep`` uses, pinned bit-identical by
    ``tests/service/test_scenario.py``.
    """
    specs: list[CellSpec] = []
    for kind in scenario.kinds:
        for adversary in scenario.adversaries:
            for n in scenario.ns:
                for eps in scenario.epss:
                    for T in scenario.Ts:
                        specs.append(
                            CellSpec(
                                kind=kind,
                                n=n,
                                eps=eps,
                                T=T,
                                adversary=adversary,
                                reps=scenario.reps,
                                root_seed=scenario.seed,
                                path=(scenario.path_tag, len(specs)),
                                batched=scenario.batched,
                                max_slots=scenario.max_slots,
                                faults=scenario.faults,
                                compact_interval=scenario.compact_interval,
                            )
                        )
    return specs

"""Service-level chaos: deterministic faults against the worker fleet.

The experiment layer (PR 2) and the shard layer (PR 7) each got a chaos
harness; this is the third ring, attacking the *service substrate*
itself -- the worker processes, the stored artifacts, and the disk --
exactly the churn model the robust-leader-election literature assumes.

A :class:`ServiceFaultPlan` wraps the shared :class:`FaultPlan` spec
syntax with service pseudo-ids (``worker:kill@SEQ``, ``worker:hang@SEQ``,
``store:tamper@SEQ``, ``disk:full@SEQ``) where ``@SEQ`` counts dispatches
across the whole fleet, starting at 1.  Plans travel to worker processes
as their compact spec string (plain picklable data), so a chaos schedule
replays bit-for-bit regardless of which worker draws which job.

What each atom proves:

* ``worker:kill`` -- the supervisor notices the sentinel, requeues the
  run, respawns the worker; the retry must complete and the recovered
  table must be byte-identical (shard checkpoints make this resumable).
* ``worker:hang`` -- heartbeats keep flowing (the beat thread survives a
  hung main thread), so this specifically exercises the per-run
  wall-clock deadline's terminate-then-kill path.
* ``store:tamper`` -- the run completes, then its stored table is
  silently perturbed without touching the checksum; verify-on-read must
  quarantine the run and never serve the bad bytes.
* ``disk:full`` -- every atomic write during the dispatch raises
  ``ENOSPC``; the run fails transiently and succeeds on retry.
"""

from __future__ import annotations

import contextlib
import errno
import json
import time
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import failing_writes
from repro.experiments.faults import SERVICE_FAULT_KINDS, Fault, FaultPlan

__all__ = ["ServiceFaultPlan", "tamper_stored_table"]

#: How long a hang nap lasts; the loop never exits on its own, short naps
#: just keep the worker promptly killable.
_HANG_NAP_S = 0.05


class ServiceFaultPlan:
    """A fleet-wide, dispatch-sequenced schedule of service faults."""

    def __init__(self, plan: FaultPlan):
        for fault in plan.faults:
            if fault.service_target() is None:
                raise ConfigurationError(
                    f"serve --inject-faults only accepts service fault ids "
                    f"{sorted(SERVICE_FAULT_KINDS)} (got {fault.exp_id!r}); "
                    "experiment/block faults belong to run_all/sweep"
                )
        self.plan = plan

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "ServiceFaultPlan":
        """Parse ``"worker:kill@1,disk:full@3"`` into a validated plan."""
        return cls(FaultPlan.from_spec(spec, seed=seed))

    def to_spec(self) -> str:
        """Render back to the compact ``ID:KIND@SEQ,...`` spec string."""
        return self.plan.to_spec()

    def __bool__(self) -> bool:
        return bool(self.plan.faults)

    def _fault(self, target: str, seq: int) -> Fault | None:
        return self.plan.service_fault_for(target, seq)

    # -- worker-side hooks (called inside the worker process) ---------------

    def fire_worker(self, seq: int) -> None:
        """Trigger any pre-run worker fault for this dispatch."""
        fault = self._fault("worker", seq)
        if fault is None:
            return
        if fault.kind == "kill":
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        if fault.kind == "hang":
            while True:  # hold the worker until the run deadline kills it
                time.sleep(_HANG_NAP_S)

    def disk_pressure(self, seq: int):
        """Context manager: ENOSPC on every atomic write for this dispatch."""
        if self._fault("disk", seq) is None:
            return contextlib.nullcontext()
        return failing_writes(
            lambda: OSError(errno.ENOSPC, "No space left on device (injected)")
        )

    def should_tamper(self, seq: int) -> bool:
        """Whether to tamper with this dispatch's stored table afterwards."""
        return self._fault("store", seq) is not None


def tamper_stored_table(run_root: str | Path) -> bool:
    """Silently perturb a completed run's stored table (chaos drills only).

    Bumps the first numeric cell of the first row in every stored table
    *without* updating the embedded checksum -- the classic bit-rot /
    malicious-edit case verify-on-read exists for.  Returns True when at
    least one table was modified.
    """
    tables_dir = Path(run_root) / "tables"
    tampered = False
    for path in sorted(tables_dir.glob("*.json")):
        try:
            data = json.loads(path.read_text())
            rows = data["table"]["rows"]
            row = rows[0]
        except (OSError, json.JSONDecodeError, KeyError, IndexError):
            continue
        for key, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                row[key] = value + 1
                break
        else:
            continue
        path.write_text(
            json.dumps(data, sort_keys=True, separators=(",", ":"))
        )
        tampered = True
    return tampered

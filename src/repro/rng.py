"""Deterministic random-number management.

All randomness in the library flows from a single root seed through
:class:`numpy.random.Generator` objects.  Independent streams (one per
station, one for the adversary, one per experiment repetition) are derived
with ``Generator.spawn`` / :class:`numpy.random.SeedSequence` so that

* every run is exactly reproducible from ``(seed,)``;
* per-station streams are statistically independent;
* adding stations or re-ordering draws in one component does not perturb
  the streams of other components.

>>> make_rng(7).random() == make_rng(7).random()
True
>>> derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
True
>>> derive_seed(1, 2, 3) == derive_seed(1, 3, 2)
False
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "spawn_many",
    "derive_seed",
]

RngLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged so callers can thread a
    generator through layered APIs).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator."""
    return rng.spawn(1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return rng.spawn(n) if n else []


def derive_seed(root_seed: int, *path: int) -> int:
    """Derive a stable 63-bit integer seed from a root seed and a path.

    Used by the experiment harness so that row ``(i, rep)`` of a sweep gets
    the same seed regardless of execution order or parallelism.
    """
    ss = np.random.SeedSequence([root_seed, *path])
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


def check_probability(p: float, what: str = "probability") -> float:
    """Validate that *p* lies in [0, 1] and return it."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"{what} must be in [0, 1], got {p!r}")
    return float(p)


def bernoulli(rng: np.random.Generator, p: float) -> bool:
    """Draw a single Bernoulli(p) sample."""
    if p <= 0.0:
        return False
    if p >= 1.0:
        return True
    return bool(rng.random() < p)


def seeds_for(reps: int, root_seed: int, *path: int) -> Sequence[int]:
    """Stable per-repetition seeds for an experiment row."""
    return [derive_seed(root_seed, *path, r) for r in range(reps)]

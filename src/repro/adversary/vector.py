"""Vectorized (batched) adversaries: one jam decision per replication per slot.

The batched simulation engine (:mod:`repro.sim.batched`) advances ``R``
independent replications in lockstep, so the adversary must produce a
``(R,)`` boolean want-mask per global slot.  This module mirrors the scalar
strategy/budget split of :mod:`repro.adversary.base`:

* :class:`VectorJammingStrategy` -- intent, as a ``(R,)`` mask;
* :class:`~repro.adversary.budget.JammingBudgetArray` -- per-replication
  (T, 1-eps) enforcement;
* :class:`BatchedAdversary` -- the combination the engine consumes.

The whole scalar suite is vectorized.  Oblivious strategies depend on the
slot index and private randomness alone, so their per-replication masks are
trivially independent.  The *adaptive* family
(:mod:`repro.adversary.adaptive`) conditions on public protocol state --
the current transmission probability and estimator ``u``, both ``(R,)``
arrays in :class:`BatchAdversaryView` -- or, for the reactive jammer, on
the previous slot's observed channel state, which the batched engine feeds
back through :meth:`VectorJammingStrategy.observe_outcomes` each slot.
Each strategy's conditioning state is an ``(R,)`` array advanced in
lockstep, so per-column decisions are exactly the scalar strategy's
decisions applied elementwise (KS cross-validated per strategy in
``tests/sim/test_batched_adaptive.py``; slot-exact in
``resilience/differential.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.adversary.budget import JammingBudgetArray
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.types import ChannelState

__all__ = [
    "BatchAdversaryView",
    "VectorJammingStrategy",
    "VectorNoJamming",
    "VectorSaturatingJammer",
    "VectorPeriodicFrontJammer",
    "VectorRandomJammer",
    "VectorBurstJammer",
    "VectorReactiveJammer",
    "VectorSingleSuppressor",
    "VectorEstimatorAttacker",
    "VectorSilenceMasker",
    "VectorCollisionForcer",
    "BatchedAdversary",
    "BATCHED_STRATEGY_REGISTRY",
    "is_batchable",
    "make_batched_adversary",
]


@dataclass(slots=True)
class BatchAdversaryView:
    """Per-slot information a batched adversary may condition on.

    The batched engine exposes the same public quantities as the scalar
    :class:`~repro.adversary.base.AdversaryView`, lifted to ``(reps,)``
    arrays, minus the per-slot trace (oblivious strategies never read it).
    """

    #: Index of the (global) slot about to be decided.
    slot: int
    #: Number of honest stations.
    n: int
    #: Number of replications in the batch.
    reps: int
    #: Per-replication budget state.
    budget: JammingBudgetArray
    #: Per-replication transmission probabilities for the current slot.
    transmit_probabilities: np.ndarray | None = None
    #: Per-replication estimator values ``u``.
    protocol_u: np.ndarray | None = None
    #: Mask of replications still running (retired columns are ignored).
    active: np.ndarray | None = None
    #: Extra engine-specific information.
    extra: dict[str, object] = field(default_factory=dict)


class VectorJammingStrategy(abc.ABC):
    """Batched jam intent: a ``(reps,)`` boolean mask per slot."""

    name: str = "vector-strategy"

    #: Whether :meth:`wants_jam_batch` reads ``view.protocol_u``.  Engines
    #: may skip materializing the policy's estimator array when this is
    #: ``False``; unknown subclasses inherit the conservative ``True``.
    uses_protocol_u: bool = True

    @abc.abstractmethod
    def wants_jam_batch(
        self, view: BatchAdversaryView, rng: np.random.Generator
    ) -> np.ndarray:
        """Want-mask for the current slot, shape ``(view.reps,)``."""

    def observe_outcomes(
        self, slot: int, observed: np.ndarray, active: np.ndarray
    ) -> None:
        """Per-slot history feedback from the engine (default: ignored).

        ``observed`` carries the per-column observed channel-state codes of
        slot *slot* with the jam applied but **before** any fault
        corruption -- the same states the scalar engines append to the
        trace that :class:`~repro.adversary.base.AdversaryView` exposes
        (the adversary knows what it jammed; it is not fooled by the fault
        model's corrupted feedback).  History-conditioned strategies
        (:class:`VectorReactiveJammer`) keep their ``(R,)`` state here.
        """

    def reset(self) -> None:
        """Clear any internal state before a new batch (default: stateless)."""

    def compact(self, keep: np.ndarray) -> None:
        """Drop every column not selected by ``keep`` (sorted index array).

        Called by the batched engine's dead-rep compaction.  Strategies
        whose decisions are elementwise functions of the per-slot view
        carry no per-column state and inherit this no-op; the
        history-conditioned and randomized members override it so the
        surviving columns' want-streams are unchanged.
        """

    def want_schedule(self, start: int, count: int) -> np.ndarray | None:
        """Per-slot want flags for slots ``start .. start+count-1``, or
        ``None`` when the want sequence cannot be precomputed.

        Oblivious strategies whose want is a pure function of the slot
        index (identical across replications, independent of protocol
        state, history and the adversary RNG) override this to return a
        ``(count,)`` boolean array; the slot-blocked megakernel uses it to
        precompute a whole block's jam grants in one pass.  The
        conservative default ``None`` keeps unknown, randomized and
        history-conditioned strategies on the per-slot path.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _ConstantWantMixin:
    """Reused constant want-mask buffers for width-uniform strategies.

    The profiled batched hot path allocated a fresh ``np.ones`` /
    ``np.full`` per slot just to say "everyone (or no one) wants to jam";
    these buffers are allocated once per width and handed out read-shared.
    Safe because every consumer (``JammingBudgetArray.grant`` and the
    engines) treats the want mask as read-only.
    """

    _true_buf: np.ndarray | None = None
    _false_buf: np.ndarray | None = None

    def _want_mask(self, reps: int, flag: bool) -> np.ndarray:
        buf = self._true_buf if flag else self._false_buf
        if buf is None or buf.size != reps:
            buf = np.full(reps, bool(flag))
            if flag:
                self._true_buf = buf
            else:
                self._false_buf = buf
        return buf


class VectorNoJamming(_ConstantWantMixin, VectorJammingStrategy):
    """Never jams any replication."""

    name = "none"
    uses_protocol_u = False

    def wants_jam_batch(self, view, rng):
        return self._want_mask(view.reps, False)

    def want_schedule(self, start, count):
        return np.zeros(count, dtype=bool)


class VectorSaturatingJammer(_ConstantWantMixin, VectorJammingStrategy):
    """Requests a jam in every slot of every replication (budget-clamped)."""

    name = "saturating"
    uses_protocol_u = False

    def wants_jam_batch(self, view, rng):
        return self._want_mask(view.reps, True)

    def want_schedule(self, start, count):
        return np.ones(count, dtype=bool)


class VectorPeriodicFrontJammer(_ConstantWantMixin, VectorJammingStrategy):
    """Lemma 2.7 front jammer: the pattern is a function of the slot index
    only, hence identical across replications."""

    name = "periodic-front"
    uses_protocol_u = False

    def __init__(self, T: int, eps: float) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        self.T = int(T)
        self.jam_prefix = int((1.0 - eps) * self.T)

    def wants_jam_batch(self, view, rng):
        want = (view.slot % self.T) < self.jam_prefix
        return self._want_mask(view.reps, want)

    def want_schedule(self, start, count):
        return (np.arange(start, start + count) % self.T) < self.jam_prefix


class VectorRandomJammer(VectorJammingStrategy):
    """Independent Bernoulli(rate) jam requests per replication per slot."""

    name = "random"
    uses_protocol_u = False

    def __init__(self, rate: float) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        # Dead-rep compaction support: the strategy keeps drawing at the
        # original batch width and selects the surviving columns, so each
        # column's Bernoulli stream is pinned to its original rep index
        # regardless of the compaction schedule.
        self._full_reps: int | None = None
        self._orig_idx: np.ndarray | None = None

    def reset(self) -> None:
        self._full_reps = None
        self._orig_idx = None

    def compact(self, keep):
        if self._orig_idx is None:
            self._orig_idx = np.asarray(keep, dtype=np.int64).copy()
        else:
            self._orig_idx = self._orig_idx[keep]

    def wants_jam_batch(self, view, rng):
        if self._full_reps is None:
            # First slot always runs pre-compaction, at the full width.
            self._full_reps = view.reps
        draw = rng.random(self._full_reps) < self.rate
        if self._orig_idx is not None:
            return draw[self._orig_idx]
        return draw


class VectorBurstJammer(_ConstantWantMixin, VectorJammingStrategy):
    """Deterministic burst/gap duty cycle, identical across replications."""

    name = "burst"
    uses_protocol_u = False

    def __init__(self, burst: int, gap: int, offset: int = 0) -> None:
        if burst < 0 or gap < 0 or burst + gap == 0:
            raise ConfigurationError(
                f"need burst >= 0, gap >= 0, burst+gap > 0; got {burst}, {gap}"
            )
        self.burst = int(burst)
        self.gap = int(gap)
        self.offset = int(offset)

    def wants_jam_batch(self, view, rng):
        phase = (view.slot + self.offset) % (self.burst + self.gap)
        return self._want_mask(view.reps, phase < self.burst)

    def want_schedule(self, start, count):
        phase = (np.arange(start, start + count) + self.offset) % (
            self.burst + self.gap
        )
        return phase < self.burst


# -- adaptive (history-conditioned) strategies ------------------------------
#
# Vector counterparts of repro.adversary.adaptive: the same decision rules
# applied elementwise over the (R,) protocol-state arrays the batched
# engine already exposes.  Edge-case handling mirrors the scalar formulas
# exactly (p <= 0 / p >= 1 clamps; NaN protocol state saturates to a jam
# request, which the budget then clamps to a saturating pattern).


def _p_single_batch(n: int, p: np.ndarray) -> np.ndarray:
    """Vectorized ``adaptive._p_single``: P[Single] per column (NaN -> NaN,
    saturated to a jam request by the caller)."""
    if n <= 0:
        return np.zeros(p.shape)
    # n*p*(1-p)**(n-1) evaluated in log space, unmasked: p=0 gives 0 via the
    # leading factor, p=1 gives exp(-inf)=0 (n>=2), so the values match the
    # masked formula exactly while costing a constant number of ufunc calls.
    with np.errstate(divide="ignore", invalid="ignore"):
        out = n * p * np.exp((n - 1) * np.log1p(-p))
    if n == 1:
        # (1-1)*log1p(-1) is 0*-inf = NaN: patch the p>=1 columns to 1.
        out[p >= 1.0] = 1.0
    return out


def _p_null_batch(n: int, p: np.ndarray) -> np.ndarray:
    """Vectorized P[Null] per column (NaN -> NaN, saturated by the caller).

    ``(1-p)**n`` in log space, unmasked: ``p <= 0`` gives ``exp(n*log1p(|p|))
    >= 1``... so the sub-zero clamp is kept explicit; ``p = 0`` gives exactly
    ``exp(0) = 1`` and ``p = 1`` gives ``exp(-inf) = 0``, matching the masked
    formula exactly with a constant number of ufunc calls.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.exp(n * np.log1p(-p))
    out[p < 0.0] = 1.0
    return out


def _saturate_nan(want: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Jam wherever the conditioning value is NaN (unknown protocol state)."""
    nan = np.isnan(values)
    if nan.any():
        want = want | nan
    return want


class VectorReactiveJammer(VectorJammingStrategy):
    """Batched :class:`~repro.adversary.adaptive.ReactiveJammer`: jam iff
    the column's *previous* observed state is in ``triggers``.

    The conditioning state is the ``(R,)`` observed-state array of the last
    slot, fed back by the engine via :meth:`observe_outcomes`; slot 0 never
    jams (no history), matching the scalar strategy.
    """

    name = "reactive"
    uses_protocol_u = False

    def __init__(self, triggers=(ChannelState.NULL,)) -> None:
        self.triggers = frozenset(ChannelState(t) for t in triggers)
        if not self.triggers:
            raise ConfigurationError(
                "VectorReactiveJammer needs at least one trigger state"
            )
        self._trigger_codes = np.array(
            sorted(int(t) for t in self.triggers), dtype=np.int8
        )
        self._prev: np.ndarray | None = None

    def reset(self) -> None:
        self._prev = None

    def compact(self, keep):
        if self._prev is not None:
            self._prev = self._prev[keep]

    def observe_outcomes(self, slot, observed, active):
        self._prev = observed

    def wants_jam_batch(self, view, rng):
        if view.slot == 0 or self._prev is None:
            return np.zeros(view.reps, dtype=bool)
        return np.isin(self._prev, self._trigger_codes)

    def __repr__(self) -> str:
        names = ",".join(sorted(t.name for t in self.triggers))
        return f"VectorReactiveJammer(triggers={names})"


class VectorSingleSuppressor(VectorJammingStrategy):
    """Batched :class:`~repro.adversary.adaptive.SingleSuppressor`: jam
    the columns whose ``P[Single]`` meets the threshold."""

    name = "single-suppressor"
    uses_protocol_u = False

    def __init__(self, threshold: float = 0.01) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam_batch(self, view, rng):
        p = view.transmit_probabilities
        if p is None:
            return np.ones(view.reps, dtype=bool)
        want = _p_single_batch(view.n, p) >= self.threshold
        return _saturate_nan(want, p)


class VectorEstimatorAttacker(VectorJammingStrategy):
    """Batched :class:`~repro.adversary.adaptive.EstimatorAttacker`: jam
    the columns whose estimator ``u`` sits within ``margin`` of ``log2 n``."""

    name = "estimator-attacker"

    def __init__(self, margin: float = 3.0) -> None:
        if margin <= 0:
            raise ConfigurationError(f"margin must be > 0, got {margin}")
        self.margin = float(margin)

    def wants_jam_batch(self, view, rng):
        u = view.protocol_u
        if u is None:
            return np.ones(view.reps, dtype=bool)
        u0 = np.log2(view.n) if view.n > 0 else 0.0
        with np.errstate(invalid="ignore"):
            want = np.abs(u - u0) <= self.margin
        return _saturate_nan(want, u)

    def __repr__(self) -> str:
        return f"VectorEstimatorAttacker(margin={self.margin})"


class VectorSilenceMasker(VectorJammingStrategy):
    """Batched :class:`~repro.adversary.adaptive.SilenceMasker`: jam the
    columns whose ``P[Null]`` meets the threshold."""

    name = "silence-masker"
    uses_protocol_u = False

    def __init__(self, threshold: float = 0.5) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam_batch(self, view, rng):
        p = view.transmit_probabilities
        if p is None:
            return np.ones(view.reps, dtype=bool)
        want = _p_null_batch(view.n, p) >= self.threshold
        return _saturate_nan(want, p)

    def __repr__(self) -> str:
        return f"VectorSilenceMasker(threshold={self.threshold})"


class VectorCollisionForcer(VectorJammingStrategy):
    """Batched :class:`~repro.adversary.adaptive.CollisionForcer`: jam the
    columns where a collision is not already the likely outcome."""

    name = "collision-forcer"
    uses_protocol_u = False

    def __init__(self, threshold: float = 0.9) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam_batch(self, view, rng):
        p = view.transmit_probabilities
        if p is None:
            return np.ones(view.reps, dtype=bool)
        p_coll = np.maximum(
            0.0, 1.0 - _p_null_batch(view.n, p) - _p_single_batch(view.n, p)
        )
        # Scalar edge cases: p <= 0 -> 0; p >= 1 -> 1 iff n >= 2.
        p_coll[p >= 1.0] = 1.0 if view.n >= 2 else 0.0
        want = p_coll < self.threshold
        return _saturate_nan(want, p)

    def __repr__(self) -> str:
        return f"VectorCollisionForcer(threshold={self.threshold})"


class BatchedAdversary:
    """A vector strategy bound to a per-replication budget and one RNG.

    The batched counterpart of :class:`~repro.adversary.base.Adversary`:
    one :meth:`decide` call per global slot, returning the budget-clamped
    ``(reps,)`` grant mask.
    """

    def __init__(
        self,
        strategy: VectorJammingStrategy,
        T: int,
        eps: float,
        reps: int,
        seed: int | np.random.Generator | None = None,
        strict: bool = False,
    ) -> None:
        self.strategy = strategy
        self.T = int(T)
        self.eps = float(eps)
        self.reps = int(reps)
        self._strict = strict
        self._rng = make_rng(seed)
        self.budget = JammingBudgetArray(self.T, self.eps, self.reps, strict=strict)

    def reset(self, seed: int | np.random.Generator | None = None) -> None:
        """Prepare for a fresh batch (new budget, reset strategy state)."""
        if seed is not None:
            self._rng = make_rng(seed)
        self.budget = JammingBudgetArray(
            self.T, self.eps, self.reps, strict=self._strict
        )
        self.strategy.reset()

    @property
    def strategy_name(self) -> str:
        """Registry name of the bound strategy (telemetry label)."""
        return getattr(self.strategy, "name", type(self.strategy).__name__)

    @property
    def rng(self) -> np.random.Generator:
        """The strategy's conditioning stream (engines may drive it)."""
        return self._rng

    def decide(self, view: BatchAdversaryView) -> np.ndarray:
        """Budget-checked jam mask for the current slot, shape ``(reps,)``."""
        want = self.strategy.wants_jam_batch(view, self._rng)
        return self.budget.grant(want)

    def compact(self, keep: np.ndarray) -> None:
        """Forward dead-rep compaction to the strategy and the budget."""
        self.strategy.compact(keep)
        self.budget.compact(keep)

    def observe_outcomes(
        self, slot: int, observed: np.ndarray, active: np.ndarray
    ) -> None:
        """Forward per-slot channel feedback to the bound strategy."""
        self.strategy.observe_outcomes(slot, observed, active)

    def __repr__(self) -> str:
        return (
            f"BatchedAdversary({self.strategy!r}, T={self.T}, eps={self.eps}, "
            f"reps={self.reps})"
        )


# Factories take (T, eps), mirroring the scalar suite registry -- including
# its parameter choices (random rate, burst/gap split), so a batched run is
# distributionally interchangeable with the scalar run of the same name.
BATCHED_STRATEGY_REGISTRY = {
    "none": lambda T, eps: VectorNoJamming(),
    "saturating": lambda T, eps: VectorSaturatingJammer(),
    "periodic-front": lambda T, eps: VectorPeriodicFrontJammer(T, eps),
    "random": lambda T, eps: VectorRandomJammer(rate=min(1.0, 1.0 - eps + 0.05)),
    "burst": lambda T, eps: VectorBurstJammer(
        burst=max(1, int((1.0 - eps) * T)), gap=max(1, T - int((1.0 - eps) * T))
    ),
    "reactive": lambda T, eps: VectorReactiveJammer(),
    "single-suppressor": lambda T, eps: VectorSingleSuppressor(),
    "estimator-attacker": lambda T, eps: VectorEstimatorAttacker(),
    "silence-masker": lambda T, eps: VectorSilenceMasker(),
    "collision-forcer": lambda T, eps: VectorCollisionForcer(),
}


def is_batchable(name: str) -> bool:
    """Whether the named strategy has a vectorized implementation."""
    return name in BATCHED_STRATEGY_REGISTRY


def make_batched_adversary(
    name: str,
    T: int,
    eps: float,
    reps: int,
    seed: int | None = None,
    strict: bool = False,
) -> BatchedAdversary:
    """Build a batched budget-enforced adversary from a registry name."""
    try:
        factory = BATCHED_STRATEGY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(BATCHED_STRATEGY_REGISTRY))
        raise ConfigurationError(
            f"strategy {name!r} has no batched implementation; known: {known}"
        ) from None
    return BatchedAdversary(
        factory(T, eps), T=T, eps=eps, reps=reps, seed=seed, strict=strict
    )

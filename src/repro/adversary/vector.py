"""Vectorized (batched) adversaries: one jam decision per replication per slot.

The batched simulation engine (:mod:`repro.sim.batched`) advances ``R``
independent replications in lockstep, so the adversary must produce a
``(R,)`` boolean want-mask per global slot.  This module mirrors the scalar
strategy/budget split of :mod:`repro.adversary.base`:

* :class:`VectorJammingStrategy` -- intent, as a ``(R,)`` mask;
* :class:`~repro.adversary.budget.JammingBudgetArray` -- per-replication
  (T, 1-eps) enforcement;
* :class:`BatchedAdversary` -- the combination the engine consumes.

Only *oblivious* strategies (plus the saturating jammer) are vectorized:
their intent depends on the slot index and private randomness alone, never
on the channel history, so the per-replication masks are trivially
independent.  Adaptive strategies (single-suppressor, ...) condition on the
per-replication trace and stay on the scalar path; experiments fall back to
:func:`repro.experiments.harness.replicate` for them (see
:func:`is_batchable`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.adversary.budget import JammingBudgetArray
from repro.errors import ConfigurationError
from repro.rng import make_rng

__all__ = [
    "BatchAdversaryView",
    "VectorJammingStrategy",
    "VectorNoJamming",
    "VectorSaturatingJammer",
    "VectorPeriodicFrontJammer",
    "VectorRandomJammer",
    "VectorBurstJammer",
    "BatchedAdversary",
    "BATCHED_STRATEGY_REGISTRY",
    "is_batchable",
    "make_batched_adversary",
]


@dataclass(slots=True)
class BatchAdversaryView:
    """Per-slot information a batched adversary may condition on.

    The batched engine exposes the same public quantities as the scalar
    :class:`~repro.adversary.base.AdversaryView`, lifted to ``(reps,)``
    arrays, minus the per-slot trace (oblivious strategies never read it).
    """

    #: Index of the (global) slot about to be decided.
    slot: int
    #: Number of honest stations.
    n: int
    #: Number of replications in the batch.
    reps: int
    #: Per-replication budget state.
    budget: JammingBudgetArray
    #: Per-replication transmission probabilities for the current slot.
    transmit_probabilities: np.ndarray | None = None
    #: Per-replication estimator values ``u``.
    protocol_u: np.ndarray | None = None
    #: Mask of replications still running (retired columns are ignored).
    active: np.ndarray | None = None
    #: Extra engine-specific information.
    extra: dict[str, object] = field(default_factory=dict)


class VectorJammingStrategy(abc.ABC):
    """Batched jam intent: a ``(reps,)`` boolean mask per slot."""

    name: str = "vector-strategy"

    @abc.abstractmethod
    def wants_jam_batch(
        self, view: BatchAdversaryView, rng: np.random.Generator
    ) -> np.ndarray:
        """Want-mask for the current slot, shape ``(view.reps,)``."""

    def reset(self) -> None:
        """Clear any internal state before a new batch (default: stateless)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class VectorNoJamming(VectorJammingStrategy):
    """Never jams any replication."""

    name = "none"

    def wants_jam_batch(self, view, rng):
        return np.zeros(view.reps, dtype=bool)


class VectorSaturatingJammer(VectorJammingStrategy):
    """Requests a jam in every slot of every replication (budget-clamped)."""

    name = "saturating"

    def wants_jam_batch(self, view, rng):
        return np.ones(view.reps, dtype=bool)


class VectorPeriodicFrontJammer(VectorJammingStrategy):
    """Lemma 2.7 front jammer: the pattern is a function of the slot index
    only, hence identical across replications."""

    name = "periodic-front"

    def __init__(self, T: int, eps: float) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        self.T = int(T)
        self.jam_prefix = int((1.0 - eps) * self.T)

    def wants_jam_batch(self, view, rng):
        want = (view.slot % self.T) < self.jam_prefix
        return np.full(view.reps, want, dtype=bool)


class VectorRandomJammer(VectorJammingStrategy):
    """Independent Bernoulli(rate) jam requests per replication per slot."""

    name = "random"

    def __init__(self, rate: float) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def wants_jam_batch(self, view, rng):
        return rng.random(view.reps) < self.rate


class VectorBurstJammer(VectorJammingStrategy):
    """Deterministic burst/gap duty cycle, identical across replications."""

    name = "burst"

    def __init__(self, burst: int, gap: int, offset: int = 0) -> None:
        if burst < 0 or gap < 0 or burst + gap == 0:
            raise ConfigurationError(
                f"need burst >= 0, gap >= 0, burst+gap > 0; got {burst}, {gap}"
            )
        self.burst = int(burst)
        self.gap = int(gap)
        self.offset = int(offset)

    def wants_jam_batch(self, view, rng):
        phase = (view.slot + self.offset) % (self.burst + self.gap)
        return np.full(view.reps, phase < self.burst, dtype=bool)


class BatchedAdversary:
    """A vector strategy bound to a per-replication budget and one RNG.

    The batched counterpart of :class:`~repro.adversary.base.Adversary`:
    one :meth:`decide` call per global slot, returning the budget-clamped
    ``(reps,)`` grant mask.
    """

    def __init__(
        self,
        strategy: VectorJammingStrategy,
        T: int,
        eps: float,
        reps: int,
        seed: int | np.random.Generator | None = None,
        strict: bool = False,
    ) -> None:
        self.strategy = strategy
        self.T = int(T)
        self.eps = float(eps)
        self.reps = int(reps)
        self._strict = strict
        self._rng = make_rng(seed)
        self.budget = JammingBudgetArray(self.T, self.eps, self.reps, strict=strict)

    def reset(self, seed: int | np.random.Generator | None = None) -> None:
        """Prepare for a fresh batch (new budget, reset strategy state)."""
        if seed is not None:
            self._rng = make_rng(seed)
        self.budget = JammingBudgetArray(
            self.T, self.eps, self.reps, strict=self._strict
        )
        self.strategy.reset()

    @property
    def strategy_name(self) -> str:
        """Registry name of the bound strategy (telemetry label)."""
        return getattr(self.strategy, "name", type(self.strategy).__name__)

    def decide(self, view: BatchAdversaryView) -> np.ndarray:
        """Budget-checked jam mask for the current slot, shape ``(reps,)``."""
        want = self.strategy.wants_jam_batch(view, self._rng)
        return self.budget.grant(want)

    def __repr__(self) -> str:
        return (
            f"BatchedAdversary({self.strategy!r}, T={self.T}, eps={self.eps}, "
            f"reps={self.reps})"
        )


# Factories take (T, eps), mirroring the scalar suite registry -- including
# its parameter choices (random rate, burst/gap split), so a batched run is
# distributionally interchangeable with the scalar run of the same name.
BATCHED_STRATEGY_REGISTRY = {
    "none": lambda T, eps: VectorNoJamming(),
    "saturating": lambda T, eps: VectorSaturatingJammer(),
    "periodic-front": lambda T, eps: VectorPeriodicFrontJammer(T, eps),
    "random": lambda T, eps: VectorRandomJammer(rate=min(1.0, 1.0 - eps + 0.05)),
    "burst": lambda T, eps: VectorBurstJammer(
        burst=max(1, int((1.0 - eps) * T)), gap=max(1, T - int((1.0 - eps) * T))
    ),
}


def is_batchable(name: str) -> bool:
    """Whether the named strategy has a vectorized implementation."""
    return name in BATCHED_STRATEGY_REGISTRY


def make_batched_adversary(
    name: str,
    T: int,
    eps: float,
    reps: int,
    seed: int | None = None,
    strict: bool = False,
) -> BatchedAdversary:
    """Build a batched budget-enforced adversary from a registry name."""
    try:
        factory = BATCHED_STRATEGY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(BATCHED_STRATEGY_REGISTRY))
        raise ConfigurationError(
            f"strategy {name!r} has no batched implementation; known: {known}"
        ) from None
    return BatchedAdversary(
        factory(T, eps), T=T, eps=eps, reps=reps, seed=seed, strict=strict
    )

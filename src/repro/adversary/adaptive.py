"""Adaptive (history-aware) jamming strategies.

The theorems of the paper hold against *every* (T, 1-eps)-bounded adaptive
adversary.  Since worst-case adversaries are existential objects, the
reproduction instantiates the natural worst-case candidates -- strategies
that use full knowledge of the protocol state (recomputable from public
history, because the protocols are uniform) to spend the jamming budget
where it hurts most:

* :class:`SingleSuppressor` -- jam exactly when the probability of a
  successful ``Single`` is high (greedy election prevention);
* :class:`EstimatorAttacker` -- jam when the LESK estimator ``u`` is inside
  its "regular band" around ``log2 n``, keeping it from settling there;
* :class:`SilenceMasker` -- jam when a ``Null`` is likely, converting the
  slot into an observed ``Collision``; this flips the estimator's only
  downward force into an upward push and is the attack the asymmetric
  ``1/a`` update is designed to survive (Section 2.1);
* :class:`CollisionForcer` -- jam every slot whose natural outcome would
  not already be a ``Collision``; the optimal simple attack against the
  symmetric-update strawman of Section 2.1;
* :class:`ReactiveJammer` -- jam as a function of the previous observed
  state (models cheap reactive hardware, cf. Richa et al. [24]).

Strategies fall back to requesting a jam when protocol state is
unavailable (non-uniform baseline runs), which the budget then clamps to a
saturating pattern.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.adversary.base import AdversaryView, JammingStrategy
from repro.errors import ConfigurationError
from repro.types import ChannelState

__all__ = [
    "ReactiveJammer",
    "SingleSuppressor",
    "EstimatorAttacker",
    "SilenceMasker",
    "CollisionForcer",
]


def _p_single(n: int, p: float) -> float:
    """Exact probability of a Single when n stations transmit w.p. p."""
    if n <= 0 or p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0 if n == 1 else 0.0
    return n * p * math.exp((n - 1) * math.log1p(-p))


class ReactiveJammer(JammingStrategy):
    """Jams iff the *previous* slot's observed state is in ``triggers``.

    The default triggers on ``NULL``: a reactive device that senses an idle
    channel and floods the next slot, starving protocols that rely on
    silence feedback.
    """

    name = "reactive"

    def __init__(self, triggers: Iterable[ChannelState] = (ChannelState.NULL,)) -> None:
        self.triggers = frozenset(ChannelState(t) for t in triggers)
        if not self.triggers:
            raise ConfigurationError("ReactiveJammer needs at least one trigger state")

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        if view.slot == 0:
            return False
        return view.trace.observed_state(view.slot - 1) in self.triggers

    def __repr__(self) -> str:
        names = ",".join(sorted(t.name for t in self.triggers))
        return f"ReactiveJammer(triggers={names})"


class SingleSuppressor(JammingStrategy):
    """Greedy election prevention: jam when ``P[Single]`` exceeds a threshold.

    Recomputes the exact Single probability from the protocol's current
    transmission probability (public information for uniform protocols) and
    spends budget only on dangerous slots.  ``threshold`` trades budget
    thriftiness against coverage; the default 0.01 jams every slot in which
    an election is at all likely.
    """

    name = "single-suppressor"

    def __init__(self, threshold: float = 0.01) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        p = view.transmit_probability
        if math.isnan(p):
            return True  # unknown protocol state: saturate
        return _p_single(view.n, p) >= self.threshold


class EstimatorAttacker(JammingStrategy):
    """Attacks LESK's estimator walk: jam whenever ``u`` is within
    ``margin`` of ``log2 n``.

    Inside this band every non-jammed slot has constant Single probability
    (Lemma 2.4), so the adversary's best use of budget is to deny exactly
    these slots; outside the band it lets the walk drift for free.
    """

    name = "estimator-attacker"

    def __init__(self, margin: float = 3.0) -> None:
        if margin <= 0:
            raise ConfigurationError(f"margin must be > 0, got {margin}")
        self.margin = float(margin)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        u = view.protocol_u
        if math.isnan(u):
            return True  # unknown protocol state: saturate
        u0 = math.log2(view.n) if view.n > 0 else 0.0
        return abs(u - u0) <= self.margin

    def __repr__(self) -> str:
        return f"EstimatorAttacker(margin={self.margin})"


class SilenceMasker(JammingStrategy):
    """Converts likely silences into observed collisions.

    Jams when ``P[Null]`` given the current transmission probability is at
    least ``threshold``.  Each granted jam turns a would-be ``Null``
    (estimator decrease by 1) into an observed ``Collision`` (increase by
    ``1/a``): the strategy tries to make the estimator diverge upward,
    which is exactly what would kill a symmetric-update protocol
    (Section 2.1) and what LESK's asymmetric update neutralizes.
    """

    name = "silence-masker"

    def __init__(self, threshold: float = 0.5) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        p = view.transmit_probability
        if math.isnan(p):
            return True  # unknown protocol state: saturate
        if p <= 0.0:
            p_null = 1.0
        elif p >= 1.0:
            p_null = 0.0
        else:
            p_null = math.exp(view.n * math.log1p(-p))
        return p_null >= self.threshold

    def __repr__(self) -> str:
        return f"SilenceMasker(threshold={self.threshold})"


class CollisionForcer(JammingStrategy):
    """Jams whenever a collision is not already the likely outcome.

    The strongest simple attack against *symmetric* estimator updates
    (Section 2.1's strawman): by converting both likely-``Null`` and
    likely-``Single`` slots into observed collisions, every slot pushes a
    symmetric walk up by +1 -- with ``eps < 1/2`` the walk diverges and the
    strawman never elects.  Against LESK the same strategy is neutralized:
    jammed slots are worth only ``+1/a = eps/8`` and the budget-mandated
    clear slots let genuine silences pull the walk back.
    """

    name = "collision-forcer"

    def __init__(self, threshold: float = 0.9) -> None:
        if not (0.0 <= threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in [0,1], got {threshold}")
        self.threshold = float(threshold)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        p = view.transmit_probability
        if math.isnan(p):
            return True  # unknown protocol state: saturate
        if p <= 0.0:
            p_coll = 0.0
        elif p >= 1.0:
            p_coll = 1.0 if view.n >= 2 else 0.0
        else:
            p_null = math.exp(view.n * math.log1p(-p))
            p_single = view.n * p * math.exp((view.n - 1) * math.log1p(-p))
            p_coll = max(0.0, 1.0 - p_null - p_single)
        return p_coll < self.threshold

    def __repr__(self) -> str:
        return f"CollisionForcer(threshold={self.threshold})"

"""(T, 1-eps)-bounded jamming adversary framework.

The adversary of Section 1.1 is *adaptive*: it sees the entire history of
the channel (and knows the protocol and the true network size ``n``) but
must commit to its jamming decision for a slot before seeing the stations'
actions in that slot.  It may jam at most ``(1-eps) * w`` slots out of any
``w >= T`` contiguous slots.

The framework separates *strategy* (what the adversary wants to do,
:class:`JammingStrategy`) from *budget* (what it is allowed to do,
:class:`JammingBudget`); :class:`Adversary` combines the two and is what
the simulation engines consume.
"""

from repro.adversary.base import Adversary, AdversaryView, JammingStrategy
from repro.adversary.combinators import AllOf, Alternating, AnyOf, Mixture, Not
from repro.adversary.budget import JammingBudget, JammingBudgetArray
from repro.adversary.vector import (
    BatchedAdversary,
    BatchAdversaryView,
    VectorJammingStrategy,
    is_batchable,
    make_batched_adversary,
)
from repro.adversary.oblivious import (
    BurstJammer,
    NoJamming,
    PeriodicFrontJammer,
    RandomJammer,
    SaturatingJammer,
    ScriptedJammer,
)
from repro.adversary.adaptive import (
    CollisionForcer,
    EstimatorAttacker,
    ReactiveJammer,
    SilenceMasker,
    SingleSuppressor,
)
from repro.adversary.search import SearchResult, find_worst_pattern
from repro.adversary.suite import STRATEGY_REGISTRY, make_adversary
from repro.adversary.validation import check_bounded, max_window_violation

__all__ = [
    "Adversary",
    "AdversaryView",
    "JammingStrategy",
    "JammingBudget",
    "JammingBudgetArray",
    "BatchedAdversary",
    "BatchAdversaryView",
    "VectorJammingStrategy",
    "is_batchable",
    "make_batched_adversary",
    "AnyOf",
    "AllOf",
    "Alternating",
    "Mixture",
    "Not",
    "NoJamming",
    "PeriodicFrontJammer",
    "RandomJammer",
    "BurstJammer",
    "SaturatingJammer",
    "ScriptedJammer",
    "ReactiveJammer",
    "EstimatorAttacker",
    "SilenceMasker",
    "SingleSuppressor",
    "CollisionForcer",
    "SearchResult",
    "find_worst_pattern",
    "STRATEGY_REGISTRY",
    "make_adversary",
    "check_bounded",
    "max_window_violation",
]

"""Online enforcement of the (T, 1-eps) jamming constraint.

Definition (Section 1.1): the adversary may jam at most ``(1-eps) * w`` out
of any ``w >= T`` contiguous time slots, for ``0 < eps < 1``.

Online enforcement
------------------
Let ``J[s]`` be the number of jammed slots among slots ``0 .. s-1`` (prefix
count).  The constraint over every *realized* window ``[s, e)`` with
``e - s >= T`` is ``J[e] - J[s] <= (1-eps) * (e - s)``.

Because the run length is not known in advance (the run ends when a leader
is elected), a sound online rule must also keep every *future* window
satisfiable.  A window ``[s, e)`` that contains the current slot ``t`` can
always be satisfied by refraining from jamming after ``t``; the binding
requirement at grant time is therefore, for every start ``s <= t``::

    jams in [s, t+1)  <=  (1-eps) * max(t+1-s, T)

i.e. windows shorter than ``T`` are padded to length ``T``.  Splitting on
whether ``t+1-s >= T`` gives two O(1)-per-slot checks:

* **(A) padded windows** (``s > t+1-T``): the count of jams in the trailing
  ``min(T, t+1)`` slots, including the requested one, must not exceed
  ``(1-eps) * T``.  Since ``J`` is non-decreasing the tightest start is the
  earliest one, so a single comparison with ``J[max(0, t+2-T)]`` suffices
  (maintained with a rolling buffer of the last ``T`` prefix counts).
* **(B) full windows** (``s <= t+1-T``): with the potential
  ``phi[s] = J[s] - (1-eps) * s`` the constraint reads
  ``phi[t+1] <= min_{s <= t+1-T} phi[s]``; the right-hand side is a lagged
  running minimum updated in O(1) per slot.

Every window of the finished run ends at some slot, so granting jams only
when (A) and (B) hold guarantees the final jam sequence is
(T, 1-eps)-bounded (verified post-hoc by
:func:`repro.adversary.validation.check_bounded`).  The rule is marginally
conservative for runs that end before a final partial window closes; this
is the sound side of the definition and is documented in DESIGN.md.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.errors import BudgetViolationError, ConfigurationError

__all__ = ["JammingBudget", "JammingBudgetArray"]


class JammingBudget:
    """Tracks jams granted so far and answers "may the adversary jam now?".

    Parameters
    ----------
    T:
        Window-size parameter of the adversary, ``T >= 1``.
    eps:
        Fraction of each window that must remain un-jammed, ``0 < eps < 1``.
        (``eps = 1`` is accepted and means "no jamming allowed at all in any
        window of length >= T", the degenerate limit.)
    strict:
        If true, :meth:`grant` raises :class:`BudgetViolationError` when a
        jam is requested but not allowed; otherwise it clamps silently.
    """

    def __init__(self, T: int, eps: float, strict: bool = False) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        self.T = int(T)
        self.eps = float(eps)
        self.strict = strict
        self._rate = 1.0 - self.eps  # allowed jam fraction per window
        self._slot = 0  # next slot to be decided
        self._jams = 0  # J[slot]: jams granted so far
        self._denied = 0  # requests clamped (non-strict mode)
        # Rolling buffer of prefix counts J[s] for s in [slot-T+1, slot]
        # (most recent last).  Seeded with J[0] = 0.
        self._recent_prefix: deque[int] = deque([0], maxlen=self.T)
        # Lagged minimum of phi[s] = J[s] - rate*s over s <= slot - T + 1
        # ... maintained so that when deciding slot t it covers s <= t+1-T.
        self._min_phi_lagged = math.inf
        # phi values waiting to age into the lagged minimum: phi[s] enters
        # once s <= (t+1) - T, i.e. T slots after being produced.
        self._pending_phi: deque[float] = deque([0.0])  # phi[0] = 0
        # Number of phi values already folded into the lagged minimum; the
        # index of the first pending phi value is exactly this count.
        self._folded = 0

    # -- public API ---------------------------------------------------------

    @property
    def slot(self) -> int:
        """Index of the next slot to be decided."""
        return self._slot

    @property
    def jams_granted(self) -> int:
        return self._jams

    @property
    def denied_requests(self) -> int:
        return self._denied

    def can_jam(self) -> bool:
        """Would a jam request for the current slot be granted?"""
        return self._allowed(jam=True)

    def grant(self, want_jam: bool) -> bool:
        """Decide the current slot and advance to the next one.

        Returns the granted jam flag (clamped to the budget).  Must be
        called exactly once per slot, in slot order.
        """
        granted = bool(want_jam) and self._allowed(jam=True)
        if want_jam and not granted:
            if self.strict:
                raise BudgetViolationError(
                    f"jam request at slot {self._slot} exceeds (T={self.T}, "
                    f"1-eps={self._rate:.4g}) budget"
                )
            self._denied += 1
        self._advance(granted)
        return granted

    # -- internals ----------------------------------------------------------

    def _allowed(self, jam: bool) -> bool:
        """Check conditions (A) and (B) for deciding the current slot."""
        t = self._slot
        new_prefix = self._jams + (1 if jam else 0)  # J[t+1]
        # (A) padded trailing window: jams among the last min(T, t+1) slots.
        # self._recent_prefix[0] == J[max(0, t+1-(T-1))] == J[max(0, t+2-T)].
        oldest = self._recent_prefix[0]
        if new_prefix - oldest > self._rate * self.T + 1e-12:
            return False
        # (B) all full windows ending at t+1.
        phi_new = new_prefix - self._rate * (t + 1)
        min_phi = self._lagged_min_for_end(t + 1)
        if phi_new > min_phi + 1e-12:
            return False
        return True

    def _lagged_min_for_end(self, end: int) -> float:
        """min over s <= end - T of phi[s]; +inf when no full window exists."""
        if end < self.T:
            return math.inf
        # phi[s] values for s = 0 .. end-T must have been folded in.  The
        # pending deque holds phi[s] for s > (previously folded horizon).
        horizon = end - self.T  # largest s to include
        # Number of phi values produced so far is self._slot + 1 (phi[0..slot]).
        # Fold in pending values whose index <= horizon.
        while self._pending_phi and self._first_pending_index() <= horizon:
            self._min_phi_lagged = min(self._min_phi_lagged, self._pending_phi.popleft())
            self._folded += 1
        return self._min_phi_lagged

    def _first_pending_index(self) -> int:
        return self._folded

    def _advance(self, granted: bool) -> None:
        self._jams += 1 if granted else 0
        self._slot += 1
        self._recent_prefix.append(self._jams)  # J[slot]
        self._pending_phi.append(self._jams - self._rate * self._slot)  # phi[slot]

    # -- introspection -------------------------------------------------------

    def headroom(self) -> int:
        """Maximum number of consecutive jams grantable starting now.

        Computed by simulating grants on a copy; cost O(answer).
        """
        clone = self.copy()
        count = 0
        while clone.can_jam():
            clone.grant(True)
            count += 1
            if count > clone.T + 1:  # can never exceed (1-eps)T consecutive
                break
        return count

    def copy(self) -> "JammingBudget":
        """Deep copy of the budget state (used by :meth:`headroom`)."""
        clone = JammingBudget(self.T, self.eps, strict=self.strict)
        clone._slot = self._slot
        clone._jams = self._jams
        clone._denied = self._denied
        clone._recent_prefix = deque(self._recent_prefix, maxlen=self.T)
        clone._min_phi_lagged = self._min_phi_lagged
        clone._pending_phi = deque(self._pending_phi)
        clone._folded = self._folded
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JammingBudget(T={self.T}, eps={self.eps}, slot={self._slot}, "
            f"jams={self._jams})"
        )


class JammingBudgetArray:
    """:class:`JammingBudget` lifted to ``reps`` independent replications.

    All replications share the same ``(T, eps)`` parameters and advance in
    lockstep (the batched engine decides one global slot for every
    replication per :meth:`grant` call), but each column tracks its own jam
    history.  The enforcement rule is the same (A)/(B) pair of O(1) checks
    as the scalar class -- the rolling prefix buffer and the lagged-min
    ``phi`` recursion -- applied elementwise to ``(reps,)`` arrays, so a
    column's decisions are *identical* to a scalar :class:`JammingBudget`
    fed the same want-sequence (asserted exhaustively in
    ``tests/adversary/test_budget_array.py``).
    """

    def __init__(self, T: int, eps: float, reps: int, strict: bool = False) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        if reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {reps}")
        self.T = int(T)
        self.eps = float(eps)
        self.reps = int(reps)
        self.strict = strict
        self._rate = 1.0 - self.eps
        self._slot = 0
        self._jams = np.zeros(self.reps, dtype=np.int64)
        self._denied = np.zeros(self.reps, dtype=np.int64)
        # Rolling buffer of prefix-count columns J[s], s in [slot-T+1, slot].
        self._recent_prefix: deque[np.ndarray] = deque(
            [np.zeros(self.reps, dtype=np.int64)], maxlen=self.T
        )
        self._min_phi_lagged = np.full(self.reps, math.inf)
        self._pending_phi: deque[np.ndarray] = deque(
            [np.zeros(self.reps, dtype=np.float64)]
        )
        self._folded = 0

    # -- public API ---------------------------------------------------------

    @property
    def slot(self) -> int:
        """Index of the next slot to be decided (shared by all columns)."""
        return self._slot

    @property
    def jams_granted(self) -> np.ndarray:
        """Per-replication jam counts, shape ``(reps,)``."""
        return self._jams

    @property
    def denied_requests(self) -> np.ndarray:
        """Per-replication clamped-request counts, shape ``(reps,)``."""
        return self._denied

    def can_jam(self) -> np.ndarray:
        """Boolean mask of columns whose jam request would be granted now."""
        return self._allowed()

    def grant(self, want_jam: np.ndarray) -> np.ndarray:
        """Decide the current slot for every column and advance.

        ``want_jam`` is a ``(reps,)`` boolean mask of jam requests; the
        returned mask is the budget-clamped grants.  Must be called exactly
        once per slot, in slot order.
        """
        want = np.asarray(want_jam, dtype=bool)
        if want.shape != (self.reps,):
            raise ConfigurationError(
                f"want_jam must have shape ({self.reps},), got {want.shape}"
            )
        granted = want & self._allowed()
        # granted is a subset of want, so xor is the set difference.
        refused = want ^ granted
        if self.strict and refused.any():
            rep = int(np.flatnonzero(refused)[0])
            raise BudgetViolationError(
                f"jam request at slot {self._slot} (replication {rep}) exceeds "
                f"(T={self.T}, 1-eps={self._rate:.4g}) budget"
            )
        self._denied += refused
        # Rebind instead of updating in place: the fresh array doubles as
        # the buffered prefix column, saving the defensive copy.
        jams = self._jams + granted
        self._jams = jams
        self._slot += 1
        self._recent_prefix.append(jams)
        self._pending_phi.append(jams - self._rate * self._slot)
        return granted

    def compact(self, keep: np.ndarray) -> None:
        """Drop every column not selected by ``keep`` (sorted index array).

        The surviving columns' decision streams are unchanged: conditions
        (A) and (B) are elementwise, so slicing every per-column array --
        including the buffered prefix counts and the pending/lagged ``phi``
        state -- preserves each kept column's grant sequence exactly.
        """
        keep = np.asarray(keep, dtype=np.int64)
        self.reps = int(keep.size)
        self._jams = self._jams[keep]
        self._denied = self._denied[keep]
        self._recent_prefix = deque(
            (col[keep] for col in self._recent_prefix), maxlen=self.T
        )
        self._min_phi_lagged = self._min_phi_lagged[keep]
        self._pending_phi = deque(col[keep] for col in self._pending_phi)

    # -- internals ----------------------------------------------------------

    def _allowed(self) -> np.ndarray:
        """Elementwise conditions (A) and (B) for jamming the current slot."""
        t = self._slot
        new_prefix = self._jams + 1  # J[t+1] if the jam were granted
        # (A) padded trailing window.
        ok = (new_prefix - self._recent_prefix[0]) <= self._rate * self.T + 1e-12
        # (B) all full windows ending at t+1.
        phi_new = new_prefix - self._rate * (t + 1)
        ok &= phi_new <= self._lagged_min_for_end(t + 1) + 1e-12
        return ok

    def _lagged_min_for_end(self, end: int):
        """Columnwise min over s <= end - T of phi[s]; +inf with no full window."""
        if end < self.T:
            return math.inf
        horizon = end - self.T
        while self._pending_phi and self._folded <= horizon:
            np.minimum(
                self._min_phi_lagged,
                self._pending_phi.popleft(),
                out=self._min_phi_lagged,
            )
            self._folded += 1
        return self._min_phi_lagged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JammingBudgetArray(T={self.T}, eps={self.eps}, reps={self.reps}, "
            f"slot={self._slot})"
        )

"""Adversary strategy interface and the budget-enforcing harness.

The model (Section 1.1): the adversary is *adaptive* -- it knows the entire
history of the channel, the protocol run by the honest stations, and the
true network size ``n`` -- but it must commit to jamming a slot **before**
seeing the stations' actions in that slot.  We expose exactly this
information through :class:`AdversaryView`:

* the full recorded trace of past slots (observed states, jam flags, ...);
* ``n`` and the adversary parameters;
* ``transmit_probability``: because the paper's protocols are *uniform*
  (every station transmits with the same, history-determined probability),
  an adversary that knows the protocol can recompute the probability the
  stations will use in the **current** slot from public history alone.
  The engines provide it as a convenience; it reveals nothing beyond what
  the paper's adversary already knows, and crucially it does not reveal
  the stations' random transmit/listen coin flips for the current slot.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.adversary.budget import JammingBudget
from repro.channel.trace import ChannelTrace
from repro.rng import make_rng

__all__ = ["AdversaryView", "JammingStrategy", "Adversary"]


@dataclass(slots=True)
class AdversaryView:
    """Everything an adaptive adversary may condition on for the current slot."""

    #: Index of the slot about to be decided.
    slot: int
    #: Number of honest stations (known to the adversary, Section 1.1).
    n: int
    #: Full history of past slots.
    trace: ChannelTrace
    #: Budget state (strategies may plan around their own headroom).
    budget: JammingBudget
    #: Per-station transmission probability the uniform protocol will use in
    #: the current slot, or NaN when unavailable (non-uniform protocols).
    transmit_probability: float = math.nan
    #: Current estimator value ``u`` of the uniform protocol, or NaN.
    protocol_u: float = math.nan
    #: Extra engine-specific information (kept out of the hot path).
    extra: dict[str, object] = field(default_factory=dict)


class JammingStrategy(abc.ABC):
    """Decides whether the adversary *wants* to jam the current slot.

    Strategies express intent; the :class:`Adversary` harness clamps intent
    to the (T, 1-eps) budget.  A strategy may itself consult
    ``view.budget.can_jam()`` to avoid wasting requests.
    """

    name: str = "strategy"

    @abc.abstractmethod
    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        """Return True to request jamming the current slot."""

    def reset(self) -> None:
        """Clear any internal state before a new run (default: stateless)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Adversary:
    """A strategy bound to a (T, 1-eps) budget and a private RNG stream.

    This is the object the simulation engines consume: one call to
    :meth:`decide` per slot, in slot order.  The returned decision is
    guaranteed (T, 1-eps)-bounded regardless of the strategy's behaviour.

    Parameters
    ----------
    strategy:
        The jamming strategy (intent).
    T, eps:
        Adversary parameters; the adversary may jam at most ``(1-eps)*w``
        out of any ``w >= T`` contiguous slots.
    seed:
        Seed or generator for the strategy's private randomness.
    strict:
        Propagated to :class:`JammingBudget`; if true, over-budget requests
        raise instead of being clamped.
    """

    def __init__(
        self,
        strategy: JammingStrategy,
        T: int,
        eps: float,
        seed: int | np.random.Generator | None = None,
        strict: bool = False,
    ) -> None:
        self.strategy = strategy
        self.T = int(T)
        self.eps = float(eps)
        self._strict = strict
        self._rng = make_rng(seed)
        self.budget = JammingBudget(self.T, self.eps, strict=strict)

    def reset(self, seed: int | np.random.Generator | None = None) -> None:
        """Prepare for a fresh run (new budget, reset strategy state)."""
        if seed is not None:
            self._rng = make_rng(seed)
        self.budget = JammingBudget(self.T, self.eps, strict=self._strict)
        self.strategy.reset()

    @property
    def strategy_name(self) -> str:
        """Registry name of the bound strategy (telemetry label)."""
        return getattr(self.strategy, "name", type(self.strategy).__name__)

    def decide(self, view: AdversaryView) -> bool:
        """Budget-checked jamming decision for the current slot."""
        want = self.strategy.wants_jam(view, self._rng)
        return self.budget.grant(want)

    def __repr__(self) -> str:
        return (
            f"Adversary({self.strategy!r}, T={self.T}, eps={self.eps})"
        )


def as_strategy(fn: Callable[[AdversaryView, np.random.Generator], bool], name: str) -> JammingStrategy:
    """Wrap a plain function as a :class:`JammingStrategy` (testing helper)."""

    class _FnStrategy(JammingStrategy):
        def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
            return fn(view, rng)

    _FnStrategy.name = name
    _FnStrategy.__name__ = f"FnStrategy_{name}"
    return _FnStrategy()

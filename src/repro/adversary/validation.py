"""Post-hoc validation of jam sequences against the paper's definition.

:func:`check_bounded` verifies the *exact* definition of a
(T, 1-eps)-bounded adversary -- at most ``(1-eps) * w`` jams in every
realized window of ``w >= T`` contiguous slots -- in O(len * ...) using a
prefix-sum reformulation that is O(len) per window length class, and
overall O(len) via the potential argument below.

Used by property-based tests to certify that the online budget
(:class:`repro.adversary.budget.JammingBudget`) never lets a violation
through, and by experiments to report realized jam intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["check_bounded", "max_window_violation", "WindowViolation"]


@dataclass(frozen=True, slots=True)
class WindowViolation:
    """Description of the worst offending window, if any."""

    start: int
    end: int  # exclusive
    jams: int
    allowed: float

    @property
    def length(self) -> int:
        return self.end - self.start


def _prefix(jams: np.ndarray) -> np.ndarray:
    j = np.asarray(jams, dtype=np.int64)
    out = np.zeros(len(j) + 1, dtype=np.int64)
    np.cumsum(j, out=out[1:])
    return out


def max_window_violation(
    jams: "np.ndarray | list[bool]", T: int, eps: float
) -> WindowViolation | None:
    """Return the worst-violating window ``[s, e)`` with ``e - s >= T``,
    or ``None`` if the sequence is (T, 1-eps)-bounded.

    The check maximizes ``J[e] - J[s] - (1-eps)(e - s)`` over ``e - s >= T``.
    Writing ``phi[i] = J[i] - (1-eps) * i``, this is
    ``max_e (phi[e] - min_{s <= e-T} phi[s])``, computable in one pass with
    a lagged running minimum -- the same potential used by the online
    budget, here applied to the completed sequence.
    """
    if T < 1:
        raise ConfigurationError(f"T must be >= 1, got {T}")
    if not (0.0 < eps <= 1.0):
        raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
    J = _prefix(np.asarray(jams, dtype=bool))
    L = len(J) - 1
    if L < T:
        return None  # no realized window of length >= T
    rate = 1.0 - eps
    phi = J - rate * np.arange(L + 1)
    # prefix minima of phi and their argmins, lagged by T.
    prefix_min = np.minimum.accumulate(phi)
    # argmin tracking
    argmin = np.zeros(L + 1, dtype=np.int64)
    best = phi[0]
    bi = 0
    for i in range(1, L + 1):
        if phi[i] < best:
            best = phi[i]
            bi = i
        argmin[i] = bi
    ends = np.arange(T, L + 1)
    slack = phi[ends] - prefix_min[ends - T]
    worst = int(np.argmax(slack))
    # Tolerance: (1-eps)*w is real-valued; the definition "at most (1-eps)w"
    # permits equality, so only strict excess (beyond float noise) counts.
    if slack[worst] <= 1e-9:
        return None
    e = int(ends[worst])
    s = int(argmin[e - T])
    jams_in = int(J[e] - J[s])
    return WindowViolation(start=s, end=e, jams=jams_in, allowed=rate * (e - s))


def check_bounded(jams: "np.ndarray | list[bool]", T: int, eps: float) -> bool:
    """True iff the jam sequence satisfies the (T, 1-eps) definition."""
    return max_window_violation(jams, T, eps) is None

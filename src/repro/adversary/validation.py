"""Post-hoc validation of jam sequences against the paper's definition.

:func:`check_bounded` verifies the *exact* definition of a
(T, 1-eps)-bounded adversary -- at most ``(1-eps) * w`` jams in every
realized window of ``w >= T`` contiguous slots -- in O(len * ...) using a
prefix-sum reformulation that is O(len) per window length class, and
overall O(len) via the potential argument below.

Used by property-based tests to certify that the online budget
(:class:`repro.adversary.budget.JammingBudget`) never lets a violation
through, and by experiments to report realized jam intensity.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetViolationError, ConfigurationError

__all__ = [
    "check_bounded",
    "max_window_violation",
    "assert_bounded",
    "WindowViolation",
    "WindowAuditor",
]


@dataclass(frozen=True, slots=True)
class WindowViolation:
    """Structured description of one offending window.

    Everything a violation report needs: where the window sits
    (``[start, end)``), how many of its slots were jammed, and how many the
    (T, 1-eps) definition would have allowed.  Returned by
    :func:`max_window_violation` and :class:`WindowAuditor`, and carried by
    the :class:`~repro.errors.BudgetViolationError` raised from
    :func:`assert_bounded`.
    """

    start: int
    end: int  # exclusive
    jams: int
    allowed: float

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def excess(self) -> float:
        """Jams beyond the allowed maximum (positive for a real violation)."""
        return self.jams - self.allowed

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"window [{self.start}, {self.end}) of length {self.length}: "
            f"{self.jams} jams > {self.allowed:.4g} allowed"
        )


def _prefix(jams: np.ndarray) -> np.ndarray:
    j = np.asarray(jams, dtype=np.int64)
    out = np.zeros(len(j) + 1, dtype=np.int64)
    np.cumsum(j, out=out[1:])
    return out


def max_window_violation(
    jams: "np.ndarray | list[bool]", T: int, eps: float
) -> WindowViolation | None:
    """Return the worst-violating window ``[s, e)`` with ``e - s >= T``,
    or ``None`` if the sequence is (T, 1-eps)-bounded.

    The check maximizes ``J[e] - J[s] - (1-eps)(e - s)`` over ``e - s >= T``.
    Writing ``phi[i] = J[i] - (1-eps) * i``, this is
    ``max_e (phi[e] - min_{s <= e-T} phi[s])``, computable in one pass with
    a lagged running minimum -- the same potential used by the online
    budget, here applied to the completed sequence.
    """
    if T < 1:
        raise ConfigurationError(f"T must be >= 1, got {T}")
    if not (0.0 < eps <= 1.0):
        raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
    J = _prefix(np.asarray(jams, dtype=bool))
    L = len(J) - 1
    if L < T:
        return None  # no realized window of length >= T
    rate = 1.0 - eps
    phi = J - rate * np.arange(L + 1)
    # prefix minima of phi and their argmins, lagged by T.
    prefix_min = np.minimum.accumulate(phi)
    # argmin tracking
    argmin = np.zeros(L + 1, dtype=np.int64)
    best = phi[0]
    bi = 0
    for i in range(1, L + 1):
        if phi[i] < best:
            best = phi[i]
            bi = i
        argmin[i] = bi
    ends = np.arange(T, L + 1)
    slack = phi[ends] - prefix_min[ends - T]
    worst = int(np.argmax(slack))
    # Tolerance: (1-eps)*w is real-valued; the definition "at most (1-eps)w"
    # permits equality, so only strict excess (beyond float noise) counts.
    if slack[worst] <= 1e-9:
        return None
    e = int(ends[worst])
    s = int(argmin[e - T])
    jams_in = int(J[e] - J[s])
    return WindowViolation(start=s, end=e, jams=jams_in, allowed=rate * (e - s))


def check_bounded(jams: "np.ndarray | list[bool]", T: int, eps: float) -> bool:
    """True iff the jam sequence satisfies the (T, 1-eps) definition."""
    return max_window_violation(jams, T, eps) is None


def assert_bounded(jams: "np.ndarray | list[bool]", T: int, eps: float) -> None:
    """Raise :class:`~repro.errors.BudgetViolationError` on a violation.

    The raised error carries the structured :class:`WindowViolation` as its
    ``violation`` attribute, so callers (tests, the invariant auditor) can
    report window coordinates instead of a bare boolean.
    """
    violation = max_window_violation(jams, T, eps)
    if violation is not None:
        err = BudgetViolationError(
            f"(T={T}, 1-eps={1.0 - eps:.4g}) budget violated: "
            f"{violation.describe()}"
        )
        err.violation = violation
        raise err


class WindowAuditor:
    """Online (T, 1-eps) compliance detector: O(1) amortized per slot.

    The detection counterpart of the *enforcing*
    :class:`repro.adversary.budget.JammingBudget`: instead of clamping jam
    requests it is fed the **granted** jam flags after the fact and reports
    the first window ``[s, e)`` with ``e - s >= T`` whose jam count exceeds
    ``(1-eps) * (e - s)``.  Used by the runtime invariant auditor
    (:mod:`repro.resilience.auditor`) to verify that whatever produced the
    jam sequence -- a budget harness, a replayed trace, a batched mask --
    actually honored the paper's definition.

    Detection reuses the potential reformulation of the post-hoc
    :func:`max_window_violation`: with ``phi[i] = J[i] - (1-eps) * i`` a
    violating window ending at ``e`` exists iff
    ``phi[e] > min_{s <= e-T} phi[s]`` (full windows).  Unlike enforcement,
    windows shorter than ``T`` are *not* padded: the definition only
    constrains realized windows of length >= T.
    """

    __slots__ = (
        "T",
        "eps",
        "_rate",
        "_slot",
        "_jams",
        "_pending",
        "_min_phi",
        "_argmin",
        "_argmin_prefix",
        "_folded",
    )

    def __init__(self, T: int, eps: float) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        self.T = int(T)
        self.eps = float(eps)
        self._rate = 1.0 - self.eps
        self._slot = 0  # next slot to be appended
        self._jams = 0  # prefix count J[slot]
        # (phi[s], J[s]) pairs waiting to age into the lagged minimum
        # (phi[s] becomes eligible once s <= e - T); seeded with s = 0.
        self._pending: deque[tuple[float, int]] = deque([(0.0, 0)])
        self._min_phi = math.inf
        self._argmin = 0  # index s achieving the lagged minimum
        self._argmin_prefix = 0  # J[argmin]
        self._folded = 0  # index of the first pending phi value

    @property
    def slot(self) -> int:
        """Index of the next slot to be appended."""
        return self._slot

    @property
    def jams_seen(self) -> int:
        return self._jams

    def append(self, jammed: bool) -> WindowViolation | None:
        """Record one granted jam flag; return the violation it completes.

        Returns ``None`` while the sequence remains (T, 1-eps)-bounded.  On
        violation, the returned window ends at the just-appended slot and
        starts at the prefix-minimum argmin, i.e. it is the *most* violating
        window ending here.
        """
        self._jams += 1 if jammed else 0
        self._slot += 1
        e = self._slot
        self._pending.append((self._jams - self._rate * e, self._jams))
        if e < self.T:
            return None
        # Fold phi[s] for all s <= e - T into the lagged minimum.
        horizon = e - self.T
        while self._folded <= horizon:
            phi_s, prefix_s = self._pending.popleft()
            if phi_s < self._min_phi:
                self._min_phi = phi_s
                self._argmin = self._folded
                self._argmin_prefix = prefix_s
            self._folded += 1
        phi_e = self._jams - self._rate * e
        # Tolerance mirrors max_window_violation: equality is permitted.
        if phi_e <= self._min_phi + 1e-9:
            return None
        s = self._argmin
        jams_in = self._jams - self._argmin_prefix
        return WindowViolation(
            start=s, end=e, jams=jams_in, allowed=self._rate * (e - s)
        )

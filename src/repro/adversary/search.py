"""Empirical worst-case search over jamming patterns.

Theorem 2.6 quantifies over every (T, 1-eps)-bounded adversary; the named
strategies are hand-designed candidates.  This module *searches* for bad
patterns instead: a (1+1) evolutionary search over budget-legal jam
scripts, scored by the median election time they inflict on a given
protocol.  If the theorem's adversary-independence holds, even the
search's best-found pattern stays within the Theorem 2.6 budget -- the
strongest adversarial evidence a simulation can produce short of a proof.

The search space is *intent* scripts (one bool per slot, clamped by the
budget at run time), mutated by flipping windows of slots; scoring re-runs
the protocol over several seeds.  Everything is deterministically seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.adversary.base import Adversary
from repro.adversary.oblivious import ScriptedJammer
from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy
from repro.rng import RngLike, make_rng
from repro.sim.fast import simulate_uniform_fast

__all__ = ["SearchResult", "find_worst_pattern"]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """Outcome of a pattern search."""

    #: The best (most delaying) intent script found.
    script: tuple[bool, ...]
    #: Its score: median election slots across the evaluation seeds
    #: (timeouts counted at the cap).
    score: float
    #: Baseline score of the all-jam (saturating) intent for comparison.
    saturating_score: float
    #: Number of candidate patterns evaluated.
    evaluated: int


def _score(
    script: np.ndarray,
    make_policy: Callable[[], UniformPolicy],
    n: int,
    T: int,
    eps: float,
    seeds: range,
    cap: int,
) -> float:
    times = []
    for seed in seeds:
        adv = Adversary(ScriptedJammer(script, cycle=True), T=T, eps=eps, seed=0)
        result = simulate_uniform_fast(
            make_policy(), n=n, adversary=adv, max_slots=cap, seed=seed
        )
        times.append(result.slots)
    return float(np.median(times))


def find_worst_pattern(
    make_policy: Callable[[], UniformPolicy],
    n: int,
    T: int,
    eps: float,
    script_length: int = 256,
    generations: int = 40,
    eval_seeds: int = 9,
    cap: int = 50_000,
    seed: RngLike = None,
) -> SearchResult:
    """Search for the intent script that maximizes median election time.

    Parameters
    ----------
    make_policy:
        Factory for fresh protocol instances (e.g. ``lambda: LESKPolicy(0.5)``).
    n, T, eps:
        Network size and adversary parameters (the budget still clamps
        every candidate at run time, so all scores are legal attacks).
    script_length:
        Length of the cycled intent script being evolved.
    generations:
        (1+1)-ES iterations: each mutates the incumbent by flipping a
        random window and keeps the better of the two.
    eval_seeds:
        Elections per scoring round (median taken across them).
    cap:
        Slot cap per election (timeouts score at the cap).
    """
    if script_length < 1 or generations < 0 or eval_seeds < 1:
        raise ConfigurationError("script_length, eval_seeds >= 1; generations >= 0")
    rng = make_rng(seed)
    seeds = range(eval_seeds)

    incumbent = rng.random(script_length) < 0.5
    best_score = _score(incumbent, make_policy, n, T, eps, seeds, cap)
    evaluated = 1

    saturating = _score(
        np.ones(script_length, dtype=bool), make_policy, n, T, eps, seeds, cap
    )
    evaluated += 1

    for _ in range(generations):
        candidate = incumbent.copy()
        start = int(rng.integers(script_length))
        width = int(rng.integers(1, max(2, script_length // 8)))
        idx = (start + np.arange(width)) % script_length
        candidate[idx] = ~candidate[idx]
        score = _score(candidate, make_policy, n, T, eps, seeds, cap)
        evaluated += 1
        if score > best_score:
            incumbent, best_score = candidate, score

    if saturating > best_score:
        incumbent, best_score = np.ones(script_length, dtype=bool), saturating

    return SearchResult(
        script=tuple(bool(b) for b in incumbent),
        score=best_score,
        saturating_score=saturating,
        evaluated=evaluated,
    )

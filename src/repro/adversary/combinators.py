"""Strategy combinators: build richer adversaries from simple ones.

Theorem 2.6 quantifies over *all* (T, 1-eps)-bounded adversaries, so the
more corners of strategy space we can reach, the stronger the empirical
evidence.  Combinators compose registered strategies without touching the
budget machinery (composition happens at the *intent* level; the harness
still clamps the result):

* :class:`AnyOf` -- jam when any sub-strategy wants to (union of attacks);
* :class:`AllOf` -- jam only when all sub-strategies agree (conserves
  budget for slots that are dangerous by every measure);
* :class:`Alternating` -- switch between phases of fixed length (models
  a jammer that cycles attack modes to evade characterization);
* :class:`Mixture` -- pick a sub-strategy per slot at random (annealing
  over attack modes);
* :class:`Not` -- complement (useful for constructing control groups in
  experiments, e.g. "jam exactly the slots X would spare").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adversary.base import AdversaryView, JammingStrategy
from repro.errors import ConfigurationError

__all__ = ["AnyOf", "AllOf", "Alternating", "Mixture", "Not"]


def _check_children(children: Sequence[JammingStrategy]) -> tuple[JammingStrategy, ...]:
    children = tuple(children)
    if not children:
        raise ConfigurationError("combinator needs at least one sub-strategy")
    return children


class AnyOf(JammingStrategy):
    """Jam iff *any* sub-strategy requests it."""

    name = "any-of"

    def __init__(self, *children: JammingStrategy) -> None:
        self.children = _check_children(children)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        # Evaluate all children (no short-circuit) so stateful children see
        # every slot.
        return any([c.wants_jam(view, rng) for c in self.children])

    def reset(self) -> None:
        for c in self.children:
            c.reset()

    def __repr__(self) -> str:
        return f"AnyOf({', '.join(map(repr, self.children))})"


class AllOf(JammingStrategy):
    """Jam iff *every* sub-strategy requests it."""

    name = "all-of"

    def __init__(self, *children: JammingStrategy) -> None:
        self.children = _check_children(children)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return all([c.wants_jam(view, rng) for c in self.children])

    def reset(self) -> None:
        for c in self.children:
            c.reset()

    def __repr__(self) -> str:
        return f"AllOf({', '.join(map(repr, self.children))})"


class Alternating(JammingStrategy):
    """Cycle through sub-strategies in fixed-length phases.

    Phase ``floor(slot / phase_length) mod len(children)`` is active; the
    inactive children still observe the slot (their state advances) so a
    reactivated child is not stale.
    """

    name = "alternating"

    def __init__(self, children: Sequence[JammingStrategy], phase_length: int) -> None:
        self.children = _check_children(children)
        if phase_length < 1:
            raise ConfigurationError(f"phase_length must be >= 1, got {phase_length}")
        self.phase_length = int(phase_length)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        votes = [c.wants_jam(view, rng) for c in self.children]
        active = (view.slot // self.phase_length) % len(self.children)
        return votes[active]

    def reset(self) -> None:
        for c in self.children:
            c.reset()

    def __repr__(self) -> str:
        return (
            f"Alternating({', '.join(map(repr, self.children))}, "
            f"phase_length={self.phase_length})"
        )


class Mixture(JammingStrategy):
    """Delegate each slot to a randomly drawn sub-strategy.

    ``weights`` defaults to uniform.  All children observe every slot.
    """

    name = "mixture"

    def __init__(
        self,
        children: Sequence[JammingStrategy],
        weights: Sequence[float] | None = None,
    ) -> None:
        self.children = _check_children(children)
        if weights is None:
            weights = [1.0] * len(self.children)
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.shape != (len(self.children),) or np.any(weights < 0) or weights.sum() <= 0:
            raise ConfigurationError(
                "weights must be non-negative, match the children, and not all be zero"
            )
        self.weights = weights / weights.sum()

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        votes = [c.wants_jam(view, rng) for c in self.children]
        choice = int(rng.choice(len(self.children), p=self.weights))
        return votes[choice]

    def reset(self) -> None:
        for c in self.children:
            c.reset()

    def __repr__(self) -> str:
        return f"Mixture({', '.join(map(repr, self.children))})"


class Not(JammingStrategy):
    """Request exactly the slots the wrapped strategy would spare."""

    name = "not"

    def __init__(self, child: JammingStrategy) -> None:
        self.child = child

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return not self.child.wants_jam(view, rng)

    def reset(self) -> None:
        self.child.reset()

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

"""Named registry of jamming strategies for experiments and the CLI.

Experiments refer to strategies by short names (``"none"``,
``"saturating"``, ``"single-suppressor"``, ...) so that tables are
self-describing; :func:`make_adversary` builds a fully configured
:class:`~repro.adversary.base.Adversary` from such a name.
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.adaptive import (
    CollisionForcer,
    EstimatorAttacker,
    ReactiveJammer,
    SilenceMasker,
    SingleSuppressor,
)
from repro.adversary.base import Adversary, JammingStrategy
from repro.adversary.oblivious import (
    BurstJammer,
    NoJamming,
    PeriodicFrontJammer,
    RandomJammer,
    SaturatingJammer,
)
from repro.errors import ConfigurationError

__all__ = ["STRATEGY_REGISTRY", "make_adversary", "strategy_names"]

# Factories take (T, eps) so that strategies which depend on the adversary
# parameters (e.g. the Lemma 2.7 front jammer) are configured consistently.
STRATEGY_REGISTRY: dict[str, Callable[[int, float], JammingStrategy]] = {
    "none": lambda T, eps: NoJamming(),
    "periodic-front": lambda T, eps: PeriodicFrontJammer(T, eps),
    "random": lambda T, eps: RandomJammer(rate=min(1.0, 1.0 - eps + 0.05)),
    "burst": lambda T, eps: BurstJammer(
        burst=max(1, int((1.0 - eps) * T)), gap=max(1, T - int((1.0 - eps) * T))
    ),
    "saturating": lambda T, eps: SaturatingJammer(),
    "reactive": lambda T, eps: ReactiveJammer(),
    "single-suppressor": lambda T, eps: SingleSuppressor(),
    "estimator-attacker": lambda T, eps: EstimatorAttacker(),
    "silence-masker": lambda T, eps: SilenceMasker(),
    "collision-forcer": lambda T, eps: CollisionForcer(),
}


def strategy_names() -> list[str]:
    """All registered strategy names, in registry order."""
    return list(STRATEGY_REGISTRY)


def make_adversary(
    name: str,
    T: int,
    eps: float,
    seed: int | None = None,
    strict: bool = False,
) -> Adversary:
    """Build a budget-enforced adversary from a registry name."""
    try:
        factory = STRATEGY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGY_REGISTRY))
        raise ConfigurationError(f"unknown strategy {name!r}; known: {known}") from None
    return Adversary(factory(T, eps), T=T, eps=eps, seed=seed, strict=strict)

"""Oblivious (history-independent) jamming strategies.

These strategies fix their jam pattern as a function of the slot index
only.  They include the exact lower-bound construction of Lemma 2.7: jam
the first ``floor((1-eps) * T)`` slots of every window of ``T`` consecutive
slots, which forces any w.h.p. leader-election algorithm to run for
``Omega(max{T, (1/eps) * log n})`` slots.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import AdversaryView, JammingStrategy
from repro.errors import ConfigurationError

__all__ = [
    "NoJamming",
    "PeriodicFrontJammer",
    "RandomJammer",
    "BurstJammer",
    "SaturatingJammer",
    "ScriptedJammer",
]


class NoJamming(JammingStrategy):
    """Never jams.  The baseline 'no adversary' environment."""

    name = "none"

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return False


class PeriodicFrontJammer(JammingStrategy):
    """Lemma 2.7 construction: jam the first ``floor((1-eps)*T)`` slots of
    every block of ``T`` consecutive slots.

    With this pattern only ``ceil(eps*T)`` slots per block are usable, so an
    algorithm needing ``c log n`` clear slots needs
    ``Omega(max{T, (1/eps) log n})`` slots in total.
    """

    name = "periodic-front"

    def __init__(self, T: int, eps: float) -> None:
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if not (0.0 < eps <= 1.0):
            raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
        self.T = int(T)
        self.jam_prefix = int((1.0 - eps) * self.T)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return (view.slot % self.T) < self.jam_prefix

    def __repr__(self) -> str:
        return f"PeriodicFrontJammer(T={self.T}, jam_prefix={self.jam_prefix})"


class RandomJammer(JammingStrategy):
    """Jams each slot independently with probability *rate*.

    Models incidental interference from co-existing networks (Section 1).
    Requests exceeding the budget are clamped by the harness, so any
    ``rate`` in [0, 1] is safe; ``rate <= 1-eps`` rarely hits the clamp.
    """

    name = "random"

    def __init__(self, rate: float) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.rate)

    def __repr__(self) -> str:
        return f"RandomJammer(rate={self.rate})"


class BurstJammer(JammingStrategy):
    """Alternates long jam bursts with idle stretches.

    Jams ``burst`` consecutive slots, then stays quiet for ``gap`` slots.
    Captures duty-cycled jammers that save energy between attacks.
    """

    name = "burst"

    def __init__(self, burst: int, gap: int, offset: int = 0) -> None:
        if burst < 0 or gap < 0 or burst + gap == 0:
            raise ConfigurationError(
                f"need burst >= 0, gap >= 0, burst+gap > 0; got {burst}, {gap}"
            )
        self.burst = int(burst)
        self.gap = int(gap)
        self.offset = int(offset)

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        phase = (view.slot + self.offset) % (self.burst + self.gap)
        return phase < self.burst

    def __repr__(self) -> str:
        return f"BurstJammer(burst={self.burst}, gap={self.gap})"


class SaturatingJammer(JammingStrategy):
    """Requests a jam in *every* slot; the budget harness grants as many as
    the (T, 1-eps) constraint permits.

    This realizes the maximal-energy adversary: the granted pattern is the
    lexicographically earliest jam sequence compatible with the budget
    (note its long-run density can sit strictly below ``1-eps``: the
    definition constrains *every* window length ``w >= T``, and odd
    lengths round ``(1-eps) * w`` down).  It is the
    harshest *oblivious* environment and a useful stress test, though not
    always the *smartest* use of the budget (see
    :mod:`repro.adversary.adaptive`).
    """

    name = "saturating"

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        return True


class ScriptedJammer(JammingStrategy):
    """Replays a fixed jam script (slot -> bool), cycling if exhausted.

    Debugging and testing tool: lets tests and bug reports pin the exact
    jam pattern a run experienced (e.g. one recovered from a trace via
    ``ChannelTrace.jammed_array()``).  Also the vehicle for
    hypothesis-generated arbitrary patterns in the property tests.
    """

    name = "scripted"

    def __init__(self, script, cycle: bool = False) -> None:
        self.script = [bool(x) for x in script]
        if not self.script:
            raise ConfigurationError("script must be non-empty")
        self.cycle = cycle

    def wants_jam(self, view: AdversaryView, rng: np.random.Generator) -> bool:
        if view.slot < len(self.script):
            return self.script[view.slot]
        if self.cycle:
            return self.script[view.slot % len(self.script)]
        return False

    def __repr__(self) -> str:
        return f"ScriptedJammer(len={len(self.script)}, cycle={self.cycle})"

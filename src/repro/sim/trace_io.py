"""Saving and loading channel traces (CSV).

Experiment figures (F1's ``u`` trajectories, success curves) are series of
per-slot values; this module round-trips :class:`ChannelTrace` objects to
CSV so traces can be archived with experiment outputs and re-analyzed
without re-simulating.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path

from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.types import ChannelState

__all__ = ["trace_to_csv", "trace_from_csv", "save_trace", "load_trace"]

_FIELDS = ["slot", "transmitters", "jammed", "true_state", "observed_state", "probability", "u"]


def trace_to_csv(trace: ChannelTrace) -> str:
    """Serialize a trace to CSV text (header + one row per slot)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_FIELDS, lineterminator="\n")
    writer.writeheader()
    for row in trace.to_rows():
        writer.writerow(row)
    return buf.getvalue()


def trace_from_csv(text: str) -> ChannelTrace:
    """Rebuild a trace from :func:`trace_to_csv` output.

    Counters (singles, jams, first-single slot) are reconstructed by
    replaying the rows through :meth:`ChannelTrace.append`, so a loaded
    trace is indistinguishable from a recorded one.
    """
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames != _FIELDS:
        raise ConfigurationError(
            f"unexpected trace header {reader.fieldnames!r}; expected {_FIELDS}"
        )
    trace = ChannelTrace()
    for i, row in enumerate(reader):
        if int(row["slot"]) != i:
            raise ConfigurationError(
                f"trace rows out of order: row {i} has slot {row['slot']}"
            )
        prob = float(row["probability"]) if row["probability"] else math.nan
        u = float(row["u"]) if row["u"] else math.nan
        trace.append(
            transmitters=int(row["transmitters"]),
            jammed=row["jammed"] == "True",
            true_state=ChannelState[row["true_state"]],
            observed_state=ChannelState[row["observed_state"]],
            probability=prob,
            u=u,
        )
    return trace


def save_trace(trace: ChannelTrace, path: str | Path) -> Path:
    """Write a trace to *path* as CSV; returns the path."""
    path = Path(path)
    path.write_text(trace_to_csv(trace))
    return path


def load_trace(path: str | Path) -> ChannelTrace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_csv(Path(path).read_text())

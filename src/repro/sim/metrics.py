"""Run results and energy accounting.

Energy follows the convention of the radio-network literature (e.g. the
authors' ICPP'13 paper on energy-efficient leader election): a station
spends one unit per slot in which it transmits and one per slot in which
it listens; sleeping is free.  In this paper's model every non-transmitting
station listens, so listening energy equals ``slots * n - transmissions``
for the faithful engine (done stations are assumed asleep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.channel.trace import ChannelTrace

__all__ = ["EnergyStats", "RunResult"]


@dataclass(slots=True)
class EnergyStats:
    """Aggregate energy accounting for a run."""

    #: Total transmissions across all stations and slots.
    transmissions: int = 0
    #: Total station-slots spent listening (awake but not transmitting).
    listening: int = 0
    #: Per-station transmission counts (faithful engine only; empty for the
    #: fast engine, which tracks only the total).
    per_station_transmissions: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.transmissions + self.listening

    def to_jsonable(self) -> dict:
        """Plain-data form for block checkpoints (NumPy scalars demoted)."""
        return {
            "transmissions": int(self.transmissions),
            "listening": int(self.listening),
            "per_station_transmissions": [
                int(t) for t in self.per_station_transmissions
            ],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "EnergyStats":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            transmissions=data["transmissions"],
            listening=data["listening"],
            per_station_transmissions=list(data["per_station_transmissions"]),
        )

    def transmissions_per_station(self, n: int) -> float:
        """Mean transmissions per station.

        Raises :class:`~repro.errors.ConfigurationError` for ``n <= 0``:
        silently returning 0.0 used to mask station-count plumbing bugs in
        energy tables.
        """
        _check_station_count(n)
        return self.transmissions / n

    def listening_per_station(self, n: int) -> float:
        """Mean listening slots per station (same guard as transmissions)."""
        _check_station_count(n)
        return self.listening / n


def _check_station_count(n: int) -> None:
    if n <= 0:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"per-station energy needs a positive station count, got n={n}"
        )


@dataclass(slots=True)
class RunResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    n:
        Number of honest stations.
    slots:
        Number of slots simulated before the run ended.
    elected:
        Whether a leader was successfully elected (protocol-specific: for
        strong-CD protocols, a successful ``Single`` occurred; for
        Notification runs, all stations terminated with exactly one leader).
    leader:
        Station id of the leader, if any.
    first_single_slot:
        Slot of the first successful (non-jammed) ``Single``, if any --
        the "selection resolution" time.
    all_terminated:
        Whether every station reached its ``done`` state (always true for
        fast strong-CD runs that elected).
    leaders_count:
        Number of stations that believe they are the leader (must be 1 for
        a correct election; recorded to let tests assert uniqueness).
    jams:
        Slots jammed by the adversary.
    jam_denied:
        Jam requests clamped by the budget harness.
    energy:
        Energy accounting.
    policy_result:
        For policy runs that complete on their own (e.g. ``Estimation``),
        the policy's result value.
    trace:
        Full slot-by-slot trace if recording was enabled.
    timed_out:
        True when the run hit ``max_slots`` without finishing.
    leader_survived:
        False when the elected leader was scheduled to crash (fault
        injection) after winning -- such a run must not count as a clean
        success in election-time summaries.  True for fault-free runs.
    restarts:
        Number of election restarts performed by the supervision layer in
        :func:`repro.core.election.elect_leader` after a would-be leader
        crashed (0 when supervision is off or unnecessary).
    """

    n: int
    slots: int
    elected: bool
    leader: int | None = None
    first_single_slot: int | None = None
    all_terminated: bool = False
    leaders_count: int = 0
    jams: int = 0
    jam_denied: int = 0
    energy: EnergyStats = field(default_factory=EnergyStats)
    policy_result: object | None = None
    trace: ChannelTrace | None = None
    timed_out: bool = False
    leader_survived: bool = True
    restarts: int = 0

    @property
    def election_slot(self) -> int | None:
        """Alias used by experiments: slot index at which election resolved
        (first successful Single)."""
        return self.first_single_slot

    def require_elected(self) -> "RunResult":
        """Raise if the run did not elect; convenience for examples.

        The message distinguishes a run that hit its slot budget
        (``timed_out``) from one that ended on its own without an
        election, and carries the jamming picture (``jams`` granted,
        ``jam_denied`` clamped) so a heavily jammed failure is
        recognizable from the exception alone.
        """
        if not self.elected:
            from repro.errors import SimulationError

            detail = (
                f"n={self.n}, timed_out={self.timed_out}, jams={self.jams}, "
                f"jam_denied={self.jam_denied}"
            )
            if self.timed_out:
                raise SimulationError(
                    f"no leader elected: run timed out at its {self.slots}-slot "
                    f"budget ({detail})"
                )
            raise SimulationError(
                f"no leader elected: run ended after {self.slots} slots "
                f"without a successful Single ({detail})"
            )
        if not self.leader_survived:
            from repro.errors import SimulationError

            raise SimulationError(
                f"leader elected at slot {self.first_single_slot} but station "
                f"{self.leader} subsequently crashed (fault injection); the "
                f"run does not count as a surviving election "
                f"(n={self.n}, restarts={self.restarts})"
            )
        return self

    def to_jsonable(self) -> dict:
        """A plain-data dict that round-trips through JSON bit-exactly.

        This is the payload of the shard supervisor's block-level
        checkpoints (:mod:`repro.experiments.shard_supervisor`): a block
        restored on ``--resume`` must be indistinguishable from one just
        computed, so every field the experiment summaries read survives
        the round trip with native Python types (NumPy scalars demoted).
        Traced runs are refused -- a :class:`ChannelTrace` is a debugging
        artifact orders of magnitude larger than the result and no sharded
        cell records one.
        """
        if self.trace is not None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "RunResult.to_jsonable cannot serialize a recorded channel "
                "trace; sharded cells must run untraced"
            )
        return {
            "n": int(self.n),
            "slots": int(self.slots),
            "elected": bool(self.elected),
            "leader": None if self.leader is None else int(self.leader),
            "first_single_slot": (
                None
                if self.first_single_slot is None
                else int(self.first_single_slot)
            ),
            "all_terminated": bool(self.all_terminated),
            "leaders_count": int(self.leaders_count),
            "jams": int(self.jams),
            "jam_denied": int(self.jam_denied),
            "energy": self.energy.to_jsonable(),
            "policy_result": _plain_result(self.policy_result),
            "timed_out": bool(self.timed_out),
            "leader_survived": bool(self.leader_survived),
            "restarts": int(self.restarts),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_jsonable` (trace is always None)."""
        return cls(
            n=data["n"],
            slots=data["slots"],
            elected=data["elected"],
            leader=data["leader"],
            first_single_slot=data["first_single_slot"],
            all_terminated=data["all_terminated"],
            leaders_count=data["leaders_count"],
            jams=data["jams"],
            jam_denied=data["jam_denied"],
            energy=EnergyStats.from_jsonable(data["energy"]),
            policy_result=data["policy_result"],
            timed_out=data["timed_out"],
            leader_survived=data["leader_survived"],
            restarts=data["restarts"],
        )


def _plain_result(value):
    """Demote a policy result to a JSON-native scalar (or refuse)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):  # NumPy scalar
        return item()
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"policy_result {value!r} is not JSON-serializable; block "
        "checkpoints support scalar policy results only"
    )

"""Fast aggregate-state simulator for Notification runs (LEWK / LEWU).

The faithful engine costs O(n) per slot, which caps weak-CD experiments at
moderate sizes.  This engine exploits the structure of the Lemma 3.1 proof:
at every moment the population decomposes into at most three *distinguished*
stations/groups, each of which is either a deterministic transmitter or a
uniform group whose transmitter count is ``Binomial(count, p)``:

* **Phase 1** -- all ``n`` stations run ``A`` in ``C_1`` with one shared
  state.  The first clear ``Single`` in ``C_1`` crowns the candidate ``l``.
* **Phase 2** -- the ``n-1`` listeners run a fresh ``A`` in ``C_2`` (one
  shared state); ``l`` keeps running its own ``A`` in ``C_1`` alone.  The
  first clear ``Single`` in ``C_2`` (transmitter ``s``) tells ``l`` it is
  the leader.  (Jammed would-be Singles keep the group uniform: the
  transmitter's Collision assumption matches what listeners observe.)
* **Phase 3** -- ``l`` transmits in every ``C_3`` slot; the ``n-2``
  notified non-leaders transmit in every ``C_1`` slot; ``s`` keeps running
  ``A`` in ``C_2`` alone.  The first clear ``C_3`` slot is a ``Single``
  (only ``l`` transmits there) and terminates everyone but ``l``.
* **Phase 4** -- ``l`` waits for a clear (hence silent) ``C_1`` slot and
  terminates as leader.

Per-slot cost is O(1); cross-validated distributionally against the
faithful engine in ``tests/sim/test_fast_notification.py``.
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy
from repro.protocols.intervals import interval_of_slot
from repro.rng import RngLike, make_rng
from repro.sim.metrics import EnergyStats, RunResult
from repro.types import ChannelState

__all__ = ["simulate_notification_fast"]


class _PolicyRun:
    """One executing copy of ``A`` restarted at every interval boundary."""

    def __init__(self, factory: Callable[[], UniformPolicy], run_set: int) -> None:
        self.factory = factory
        self.run_set = run_set  # which C_j this copy runs in
        self.policy: UniformPolicy | None = None
        self.key: tuple[int, int] | None = None
        self.step = 0

    def probability(self, iv) -> float:
        """Transmission probability for a slot of interval *iv* (resets A
        at interval boundaries, per Function 4)."""
        key = (iv.j, iv.i)
        if self.policy is None or self.key != key:
            self.policy = self.factory()
            self.key = key
            self.step = 0
        return self.policy.transmit_probability(self.step)

    def observe(self, state: ChannelState) -> None:
        """Advance A's state by one observed slot."""
        assert self.policy is not None
        self.policy.observe(self.step, state)
        self.step += 1

    def fork(self) -> "_PolicyRun":
        """Clone for a station whose state diverges from the group (the C2
        transmitter ``s``): same parameters, same *current* state.

        Policies are deterministic given observations, so replaying is
        unnecessary -- but the instance is shared-mutable; the group is
        about to stop using it, so handing over the object is safe.
        """
        clone = _PolicyRun(self.factory, self.run_set)
        clone.policy = self.policy
        clone.key = self.key
        clone.step = self.step
        return clone


def simulate_notification_fast(
    algorithm_factory: Callable[[], UniformPolicy],
    n: int,
    adversary: Adversary,
    max_slots: int,
    seed: RngLike = None,
    record_trace: bool = False,
) -> RunResult:
    """Simulate Notification(A) over *n* weak-CD stations in O(1)/slot.

    Parameters mirror :func:`repro.sim.fast.simulate_uniform_fast`; the
    *algorithm_factory* produces fresh instances of the wrapped
    first-``Single`` algorithm ``A`` (e.g. ``lambda: LESKPolicy(0.5)``).
    """
    if n < 3:
        raise ConfigurationError(
            f"the fast Notification engine needs n >= 3 (Lemma 3.1's own "
            f"assumption: without a notifying crowd in C_1 the leader can "
            f"quit before the C_2 winner is informed); got n = {n}.  Use the "
            f"faithful engine for n = 2."
        )
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    rng = make_rng(seed)
    adversary.reset(seed=rng.spawn(1)[0])
    trace = ChannelTrace()
    energy = EnergyStats()

    phase = 1
    group = _PolicyRun(algorithm_factory, run_set=1)  # phase-1 crowd, then C2 crowd
    group_count = n
    l_run: _PolicyRun | None = None  # candidate leader's own A in C1
    s_run: _PolicyRun | None = None  # C2 winner's own A in C2
    nonleaders_notifying = 0  # stations transmitting in C1 (phase >= 3)
    s_active = False
    leader_done = False
    slots_run = 0
    timed_out = True

    def sample(count: int, p: float) -> int:
        if count <= 0 or p <= 0.0:
            return 0
        if p >= 1.0:
            return count
        return int(rng.binomial(count, p))

    for slot in range(max_slots):
        iv = interval_of_slot(slot)
        view = AdversaryView(
            slot=slot, n=n, trace=trace, budget=adversary.budget
        )
        jammed = adversary.decide(view)

        k = 0
        group_p = l_p = s_p = 0.0
        group_k = l_tx = s_tx = 0
        if iv is not None:
            if iv.j == 1:
                if phase == 1:
                    group_p = group.probability(iv)
                    group_k = sample(group_count, group_p)
                    k += group_k
                elif phase == 2 and l_run is not None:
                    # l keeps running A alone in C1, oblivious to its win.
                    l_p = l_run.probability(iv)
                    l_tx = sample(1, l_p)
                    k += l_tx
                # Phase 3: the notified non-leaders keep C1 busy so the
                # leader does not quit early (the n >= 3 mechanism).
                k += nonleaders_notifying
            elif iv.j == 2:
                if phase == 2:
                    group_p = group.probability(iv)
                    group_k = sample(group_count, group_p)
                    k += group_k
                elif s_active and s_run is not None:
                    s_p = s_run.probability(iv)
                    s_tx = sample(1, s_p)
                    k += s_tx
            elif iv.j == 3:
                if phase >= 3 and not leader_done:
                    k += 1  # the leader transmits in every C3 slot

        outcome = resolve_slot(slot, k, jammed)
        energy.transmissions += k
        trace.append(
            transmitters=k,
            jammed=jammed,
            true_state=outcome.true_state,
            observed_state=outcome.observed_state,
        )
        slots_run = slot + 1
        observed = outcome.observed_state
        clear_single = outcome.successful_single

        if iv is None:
            continue

        if phase == 1:
            if iv.j == 1 and group.policy is not None:
                if clear_single and group_k == 1:
                    # The transmitter l missed the Single and plays on alone
                    # in C1; everyone else moves to the C2 execution.
                    l_run = group.fork()
                    l_run.observe(ChannelState.COLLISION)  # Function 3 view
                    group = _PolicyRun(algorithm_factory, run_set=2)
                    group_count = n - 1
                    phase = 2
                else:
                    group.observe(observed)
        elif phase == 2:
            if iv.j == 1 and l_run is not None and l_run.policy is not None:
                # l's solo C1 slot: it observes its own Broadcast result.
                if l_tx:
                    l_run.observe(ChannelState.COLLISION)
                else:
                    l_run.observe(observed)
            elif iv.j == 2 and group.policy is not None:
                if clear_single and group_k == 1:
                    # Second Single: l learns it is the leader; the n-2
                    # listeners start hammering C1; the transmitter s plays
                    # on alone in C2 with the Collision view.
                    s_run = group.fork()
                    s_run.observe(ChannelState.COLLISION)
                    s_active = True
                    nonleaders_notifying = group_count - 1
                    phase = 3
                else:
                    group.observe(observed)
        elif phase == 3:
            if iv.j == 2 and s_active and s_run is not None and s_run.policy is not None:
                if s_tx:
                    s_run.observe(ChannelState.COLLISION)
                else:
                    s_run.observe(observed)
            if iv.j == 3 and clear_single:
                # The leader's announcement: s and the notifying crowd quit.
                s_active = False
                nonleaders_notifying = 0
                phase = 4
        elif phase == 4:
            if iv.j == 1 and observed is ChannelState.NULL:
                leader_done = True
                timed_out = False
                break

    elected = leader_done
    leader = int(rng.integers(n)) if elected else None
    energy.listening = n * slots_run - energy.transmissions
    return RunResult(
        n=n,
        slots=slots_run,
        elected=elected,
        leader=leader,
        first_single_slot=trace.first_single_slot,
        all_terminated=elected,
        leaders_count=1 if elected else 0,
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        trace=trace if record_trace else None,
        timed_out=timed_out,
    )

"""Simulation engines.

* :mod:`repro.sim.engine` -- faithful per-station synchronous engine
  (ground truth; O(n) per slot).
* :mod:`repro.sim.fast` -- vectorized engine for uniform protocols: one
  shared policy state, transmitter counts sampled as ``Binomial(n, p)``
  (O(1) per slot, independent of n).
* :mod:`repro.sim.fast_notification` -- aggregate-state engine for weak-CD
  Notification runs (the Lemma 3.1 proof structure as code; O(1) per slot).
* :mod:`repro.sim.batched` -- cross-replication engine: R independent
  replications of a uniform protocol advanced per NumPy step (O(1/R)
  interpreter overhead per run-slot; the Monte Carlo workhorse).

(The baselines package adds vectorized ARS and tournament simulators.)
Cross-validation tests assert every fast engine is distributionally
indistinguishable from the faithful one; ``docs/engines.md`` gives the
equivalence arguments.
"""

from repro.sim.batched import BatchRunResult, simulate_uniform_batched
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.sim.fast_notification import simulate_notification_fast
from repro.sim.metrics import EnergyStats, RunResult

__all__ = [
    "simulate_stations",
    "simulate_uniform_fast",
    "simulate_notification_fast",
    "simulate_uniform_batched",
    "BatchRunResult",
    "RunResult",
    "EnergyStats",
]

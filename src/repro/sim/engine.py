"""Faithful per-station synchronous engine.

Simulates the Section 1.1 model exactly: every slot, (1) the adversary
commits its jamming decision from public history, (2) every non-terminated
station independently decides to transmit or listen, (3) the channel
resolves, (4) feedback is delivered per the CD mode.  Terminated stations
sleep (no transmissions, no updates).

This engine is the ground truth: O(n) per slot, used for the weak-CD
Notification runs, the non-uniform baselines, and cross-validation of the
fast engine.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.faulty import corrupt_observed
from repro.channel.feedback import feedback_for
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol
from repro.rng import RngLike, make_rng, spawn_many
from repro.sim.instrumentation import EngineRecorder
from repro.sim.metrics import EnergyStats, RunResult
from repro.telemetry import get_telemetry
from repro.types import Action, CDMode, ChannelState, PerceivedState, SlotFeedback

__all__ = ["simulate_stations"]


def _realize_faults(faults, n: int, max_slots: int, spawn_from):
    """Common engine-side fault realization.

    Accepts a :class:`~repro.resilience.faults.FaultModel` (realized here
    from a freshly spawned stream -- drawn *only* when faults are enabled,
    after all pre-existing spawns, so the no-fault bitstream is untouched)
    or an already-realized schedule (tests, replay).  Returns ``None`` when
    there is nothing to inject.
    """
    if faults is None:
        return None
    from repro.resilience.faults import FaultModel

    if isinstance(faults, FaultModel):
        if not faults.enabled:
            return None
        return faults.realize(n, max_slots, spawn_from.spawn(1)[0])
    return faults


def simulate_stations(
    stations: Sequence[StationProtocol],
    adversary: Adversary,
    cd_mode: CDMode,
    max_slots: int,
    seed: RngLike = None,
    record_trace: bool = False,
    stop_on_first_single: bool = False,
    stop_when_all_done: bool = True,
    faults=None,
    auditor=None,
) -> RunResult:
    """Run *stations* against *adversary* until termination.

    Parameters
    ----------
    stations:
        Fresh station protocol instances, one per honest station.  The
        engine resets each with a private RNG stream.
    adversary:
        Budget-enforced adversary (reset by the engine).
    cd_mode:
        Collision-detection model used for feedback delivery.
    max_slots:
        Hard slot limit; reaching it marks the result ``timed_out``.
    seed:
        Root seed or generator; station and adversary streams are spawned
        from it.
    record_trace:
        Keep the full slot-by-slot trace on the result.
    stop_on_first_single:
        End the run at the first successful ``Single`` (selection
        resolution semantics) even if stations have not terminated --
        used when measuring strong-CD election time, where the first
        ``Single`` *is* the election.
    stop_when_all_done:
        End the run once every station reports ``done`` (the normal
        termination criterion for Notification runs).
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` (or an
        already-realized schedule): station churn removes stations from
        slots, corruption rewrites what everyone hears.  ``None`` (or a
        disabled model) leaves the run bit-identical to a fault-free build.
    auditor:
        Optional :class:`~repro.resilience.auditor.InvariantAuditor`; when
        given, every slot and the final election are invariant-checked.
    """
    n = len(stations)
    if n < 1:
        raise ConfigurationError("need at least one station")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    root = make_rng(seed)
    station_rngs = spawn_many(root, n)
    adversary.reset(seed=root.spawn(1)[0])
    # Fault streams spawn only when faults are enabled, *after* every
    # pre-existing spawn: the fault-free bitstream is untouched.
    realized = _realize_faults(faults, n, max_slots, root)
    for sid, (station, srng) in enumerate(zip(stations, station_rngs)):
        station.reset(sid, srng)

    trace = ChannelTrace(record_probabilities=True)
    energy = EnergyStats(per_station_transmissions=[0] * n)
    actions: list[Action] = [Action.LISTEN] * n
    slots_run = 0
    first_single: int | None = None
    single_transmitter: int | None = None
    timed_out = True
    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "faithful", adversary.strategy_name)
        if tel.enabled
        else None
    )

    for slot in range(max_slots):
        # (1) adversary commits, seeing history but not current actions.
        probe = stations[0]
        view = AdversaryView(
            slot=slot,
            n=n,
            trace=trace,
            budget=adversary.budget,
            transmit_probability=probe.transmit_probability_hint(),
            protocol_u=probe.u_hint(),
        )
        jammed = adversary.decide(view)

        # (2) stations act; churned-out stations miss the slot entirely
        # (no begin_slot, frozen state, no energy).
        if realized is not None:
            participating = realized.station_awake(slot)
            flags = realized.begin_slot(slot, int(participating.sum()))
        else:
            participating = None
            flags = None
        k = 0
        last_tx = -1
        for sid, station in enumerate(stations):
            if participating is not None and not participating[sid]:
                actions[sid] = Action.LISTEN
                continue
            if station.done:
                actions[sid] = Action.LISTEN
                continue
            action = station.begin_slot(slot)
            actions[sid] = action
            if action is Action.TRANSMIT:
                k += 1
                last_tx = sid
                energy.transmissions += 1
                energy.per_station_transmissions[sid] += 1
            elif action is Action.LISTEN:
                energy.listening += 1
            # SLEEP: radio off, no energy, no feedback content.

        # (3) channel resolves; fault corruption rewrites the observation
        # for everyone alike (None = erased, feedback withheld).
        outcome = resolve_slot(slot, k, jammed)
        if flags is not None:
            observed = corrupt_observed(outcome.observed_state, flags)
        else:
            observed = outcome.observed_state
        trace.append(
            transmitters=k,
            jammed=jammed,
            true_state=outcome.true_state,
            observed_state=outcome.observed_state,
            probability=view.transmit_probability,
            u=view.protocol_u,
        )
        if (
            outcome.successful_single
            and observed is ChannelState.SINGLE
            and first_single is None
        ):
            # A Single only resolves the election if stations *hear* it: an
            # erased/downgraded Single goes unnoticed and the run continues.
            first_single = slot
            single_transmitter = last_tx
        if rec is not None:
            rec.record_slot(slot, k, jammed)
        if auditor is not None:
            auditor.observe_slot(
                slot,
                k,
                jammed,
                observed,
                corrupted=flags.corrupted if flags is not None else False,
            )

        # (4) feedback to active stations.
        for sid, station in enumerate(stations):
            if participating is not None and not participating[sid]:
                # Missed the slot: no begin_slot happened, so no delivery.
                continue
            if station.done and actions[sid] is Action.LISTEN:
                # Terminated stations sleep; skip delivery.  (A station that
                # transmitted and became done in a previous slot is already
                # covered by the same check.)
                continue
            if actions[sid] is Action.SLEEP:
                # A sleeping station learns nothing about the slot.
                fb = SlotFeedback(transmitted=False, perceived=PerceivedState.UNKNOWN)
            elif observed is None:
                # Fault-erased slot: everyone's feedback is withheld.
                fb = SlotFeedback(
                    transmitted=actions[sid] is Action.TRANSMIT,
                    perceived=PerceivedState.UNKNOWN,
                )
            else:
                fb = feedback_for(
                    transmitted=actions[sid] is Action.TRANSMIT,
                    observed=observed,
                    mode=cd_mode,
                )
            station.end_slot(slot, fb)

        slots_run = slot + 1
        if stop_on_first_single and first_single is not None:
            timed_out = False
            break
        if stop_when_all_done and _all_live_done(stations, realized, slot):
            timed_out = False
            break

    leaders = [sid for sid, s in enumerate(stations) if s.is_leader]
    all_done = _all_live_done(stations, realized, slots_run - 1)
    if stop_on_first_single:
        elected = first_single is not None
        leader = leaders[0] if len(leaders) == 1 else None
    else:
        elected = all_done and len(leaders) == 1
        leader = leaders[0] if elected else None
    leader_survived = True
    if realized is not None and leader is not None:
        leader_survived = realized.leader_survives(leader)
    if auditor is not None:
        leader_transmitted = True
        if stop_on_first_single and leader is not None and single_transmitter is not None:
            leader_transmitted = leader == single_transmitter
        leader_awake = True
        if realized is not None and leader is not None and first_single is not None:
            leader_awake = realized.station_participating(leader, first_single)
        auditor.check_election(
            len(leaders),
            leader=leader,
            deciding_slot=first_single,
            leader_transmitted=leader_transmitted,
            leader_awake=leader_awake,
        )
    if rec is not None:
        rec.finish(
            runs=1,
            elections=int(elected),
            timeouts=int(timed_out),
            jam_denied=adversary.budget.denied_requests,
            last_slot=slots_run,
        )
    if realized is not None and tel.enabled:
        realized.publish(tel)
    return RunResult(
        n=n,
        slots=slots_run,
        elected=elected,
        leader=leader,
        first_single_slot=first_single,
        all_terminated=all_done,
        leaders_count=len(leaders),
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        trace=trace if record_trace else None,
        timed_out=timed_out,
        leader_survived=leader_survived,
    )


def _all_live_done(stations, realized, slot: int) -> bool:
    """All-done termination, excluding permanently crashed stations.

    A crashed station never reaches ``done`` on its own; without this the
    normal termination criterion could never fire under churn.  Sleeping,
    skewed or not-yet-joined stations *do* still count -- they will be back.
    """
    if realized is None:
        return all(s.done for s in stations)
    crash = realized.crash_slot
    return all(
        s.done or (0 <= crash[sid] <= slot) for sid, s in enumerate(stations)
    )


def build_stations(factory: Callable[[], StationProtocol], n: int) -> list[StationProtocol]:
    """Construct *n* fresh stations from a zero-argument factory."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return [factory() for _ in range(n)]

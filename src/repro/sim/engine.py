"""Faithful per-station synchronous engine.

Simulates the Section 1.1 model exactly: every slot, (1) the adversary
commits its jamming decision from public history, (2) every non-terminated
station independently decides to transmit or listen, (3) the channel
resolves, (4) feedback is delivered per the CD mode.  Terminated stations
sleep (no transmissions, no updates).

This engine is the ground truth: O(n) per slot, used for the weak-CD
Notification runs, the non-uniform baselines, and cross-validation of the
fast engine.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.feedback import feedback_for
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol
from repro.rng import RngLike, make_rng, spawn_many
from repro.sim.instrumentation import EngineRecorder
from repro.sim.metrics import EnergyStats, RunResult
from repro.telemetry import get_telemetry
from repro.types import Action, CDMode, PerceivedState, SlotFeedback

__all__ = ["simulate_stations"]


def simulate_stations(
    stations: Sequence[StationProtocol],
    adversary: Adversary,
    cd_mode: CDMode,
    max_slots: int,
    seed: RngLike = None,
    record_trace: bool = False,
    stop_on_first_single: bool = False,
    stop_when_all_done: bool = True,
) -> RunResult:
    """Run *stations* against *adversary* until termination.

    Parameters
    ----------
    stations:
        Fresh station protocol instances, one per honest station.  The
        engine resets each with a private RNG stream.
    adversary:
        Budget-enforced adversary (reset by the engine).
    cd_mode:
        Collision-detection model used for feedback delivery.
    max_slots:
        Hard slot limit; reaching it marks the result ``timed_out``.
    seed:
        Root seed or generator; station and adversary streams are spawned
        from it.
    record_trace:
        Keep the full slot-by-slot trace on the result.
    stop_on_first_single:
        End the run at the first successful ``Single`` (selection
        resolution semantics) even if stations have not terminated --
        used when measuring strong-CD election time, where the first
        ``Single`` *is* the election.
    stop_when_all_done:
        End the run once every station reports ``done`` (the normal
        termination criterion for Notification runs).
    """
    n = len(stations)
    if n < 1:
        raise ConfigurationError("need at least one station")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    root = make_rng(seed)
    station_rngs = spawn_many(root, n)
    adversary.reset(seed=root.spawn(1)[0])
    for sid, (station, srng) in enumerate(zip(stations, station_rngs)):
        station.reset(sid, srng)

    trace = ChannelTrace(record_probabilities=True)
    energy = EnergyStats(per_station_transmissions=[0] * n)
    actions: list[Action] = [Action.LISTEN] * n
    slots_run = 0
    first_single: int | None = None
    timed_out = True
    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "faithful", adversary.strategy_name)
        if tel.enabled
        else None
    )

    for slot in range(max_slots):
        # (1) adversary commits, seeing history but not current actions.
        probe = stations[0]
        view = AdversaryView(
            slot=slot,
            n=n,
            trace=trace,
            budget=adversary.budget,
            transmit_probability=probe.transmit_probability_hint(),
            protocol_u=probe.u_hint(),
        )
        jammed = adversary.decide(view)

        # (2) stations act.
        k = 0
        for sid, station in enumerate(stations):
            if station.done:
                actions[sid] = Action.LISTEN
                continue
            action = station.begin_slot(slot)
            actions[sid] = action
            if action is Action.TRANSMIT:
                k += 1
                energy.transmissions += 1
                energy.per_station_transmissions[sid] += 1
            elif action is Action.LISTEN:
                energy.listening += 1
            # SLEEP: radio off, no energy, no feedback content.

        # (3) channel resolves.
        outcome = resolve_slot(slot, k, jammed)
        trace.append(
            transmitters=k,
            jammed=jammed,
            true_state=outcome.true_state,
            observed_state=outcome.observed_state,
            probability=view.transmit_probability,
            u=view.protocol_u,
        )
        if outcome.successful_single and first_single is None:
            first_single = slot
        if rec is not None:
            rec.record_slot(slot, k, jammed)

        # (4) feedback to active stations.
        for sid, station in enumerate(stations):
            if station.done and actions[sid] is Action.LISTEN:
                # Terminated stations sleep; skip delivery.  (A station that
                # transmitted and became done in a previous slot is already
                # covered by the same check.)
                continue
            if actions[sid] is Action.SLEEP:
                # A sleeping station learns nothing about the slot.
                fb = SlotFeedback(transmitted=False, perceived=PerceivedState.UNKNOWN)
            else:
                fb = feedback_for(
                    transmitted=actions[sid] is Action.TRANSMIT,
                    observed=outcome.observed_state,
                    mode=cd_mode,
                )
            station.end_slot(slot, fb)

        slots_run = slot + 1
        if stop_on_first_single and first_single is not None:
            timed_out = False
            break
        if stop_when_all_done and all(s.done for s in stations):
            timed_out = False
            break

    leaders = [sid for sid, s in enumerate(stations) if s.is_leader]
    all_done = all(s.done for s in stations)
    if stop_on_first_single:
        elected = first_single is not None
        leader = leaders[0] if len(leaders) == 1 else None
    else:
        elected = all_done and len(leaders) == 1
        leader = leaders[0] if elected else None
    if rec is not None:
        rec.finish(
            runs=1,
            elections=int(elected),
            timeouts=int(timed_out),
            jam_denied=adversary.budget.denied_requests,
            last_slot=slots_run,
        )
    return RunResult(
        n=n,
        slots=slots_run,
        elected=elected,
        leader=leader,
        first_single_slot=first_single,
        all_terminated=all_done,
        leaders_count=len(leaders),
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        trace=trace if record_trace else None,
        timed_out=timed_out,
    )


def build_stations(factory: Callable[[], StationProtocol], n: int) -> list[StationProtocol]:
    """Construct *n* fresh stations from a zero-argument factory."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return [factory() for _ in range(n)]

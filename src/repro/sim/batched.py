"""Batched cross-replication engine for uniform protocols.

:func:`repro.sim.fast.simulate_uniform_fast` already makes one *run* cost
O(1) per slot, but Monte Carlo tables run hundreds of independent
replications and the per-slot Python interpreter overhead -- not the
sampling -- dominates the wall clock.  This engine advances ``R``
independent replications per NumPy step:

* per-replication transmit probabilities as a ``(R,)`` array
  (:class:`~repro.protocols.vector.VectorUniformPolicy`);
* transmitter counts for all replications in one
  ``rng.binomial(n, p_vec)`` call;
* vectorized slot resolution (``k == 0 / 1 / >= 2`` plus the jam mask);
* per-replication (T, 1-eps) budgets advanced in lockstep
  (:class:`~repro.adversary.budget.JammingBudgetArray`);
* an active-mask that retires finished replications without Python-level
  branching per replication.

Exactness: each column sees binomial draws with its own probability and an
independent jam/observation sequence, and evolves by the scalar policy's
update rule -- so per-replication run distributions are *identical* to
``simulate_uniform_fast`` (the per-column bitstreams differ, the laws do
not).  Cross-validated by KS tests in ``tests/sim/test_batched.py``.

Scope: uniform policies with a vector implementation, against any
registered vectorized adversary -- oblivious patterns and the adaptive
family alike.  Adaptive strategies condition on the per-column protocol
state exposed through :class:`BatchAdversaryView` and on per-slot channel
feedback delivered via the adversary's ``observe_outcomes`` hook (the
pre-fault-corruption observed states, matching the scalar trace the
adversary sees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.adversary.vector import (
    BatchAdversaryView,
    BatchedAdversary,
    VectorJammingStrategy,
)
from repro.errors import ConfigurationError
from repro.protocols.vector import VectorUniformPolicy
from repro.rng import RngLike, make_rng
from repro.sim.instrumentation import EngineRecorder
from repro.sim.metrics import EnergyStats, RunResult
from repro.telemetry import get_telemetry
from repro.types import ChannelState

__all__ = ["simulate_uniform_batched", "BatchRunResult"]

_NULL = np.int8(ChannelState.NULL)
_SINGLE = np.int8(ChannelState.SINGLE)
_COLLISION = np.int8(ChannelState.COLLISION)


@dataclass(slots=True)
class BatchRunResult:
    """Columnar outcome of ``reps`` batched replications.

    All arrays have shape ``(reps,)``; :meth:`results` converts to the
    scalar :class:`~repro.sim.metrics.RunResult` list the experiment
    harness consumes.
    """

    n: int
    reps: int
    slots: np.ndarray  # int64: slots simulated before each run ended
    elected: np.ndarray  # bool
    leaders: np.ndarray  # int64, -1 where no leader
    first_single_slot: np.ndarray  # int64, -1 where none occurred
    jams: np.ndarray  # int64
    jam_denied: np.ndarray  # int64
    transmissions: np.ndarray  # int64 station-slots transmitting
    listening: np.ndarray  # int64 station-slots listening
    policy_completed: np.ndarray  # bool: column finished of its own accord
    timed_out: np.ndarray  # bool
    leader_survived: np.ndarray | None = None  # bool; None = fault-free batch
    policy_results: np.ndarray | None = None  # int64, -1 = no result

    def results(self) -> list[RunResult]:
        """Per-replication :class:`RunResult` views (harness-compatible)."""
        out = []
        for r in range(self.reps):
            elected = bool(self.elected[r])
            first = int(self.first_single_slot[r])
            presult: object | None = None
            if self.policy_results is not None and self.policy_results[r] >= 0:
                presult = int(self.policy_results[r])
            out.append(
                RunResult(
                    n=self.n,
                    slots=int(self.slots[r]),
                    elected=elected,
                    leader=int(self.leaders[r]) if elected else None,
                    first_single_slot=first if first >= 0 else None,
                    all_terminated=elected or bool(self.policy_completed[r]),
                    leaders_count=1 if elected else 0,
                    jams=int(self.jams[r]),
                    jam_denied=int(self.jam_denied[r]),
                    energy=EnergyStats(
                        transmissions=int(self.transmissions[r]),
                        listening=int(self.listening[r]),
                    ),
                    policy_result=presult,
                    timed_out=bool(self.timed_out[r]),
                    leader_survived=(
                        True
                        if self.leader_survived is None
                        else bool(self.leader_survived[r])
                    ),
                )
            )
        return out


def simulate_uniform_batched(
    policy_factory: Callable[[int], VectorUniformPolicy],
    n: int,
    adversary_factory: Callable[[int], BatchedAdversary],
    reps: int,
    max_slots: int,
    root_seed: RngLike = None,
    halt_on_single: bool = True,
    faults=None,
    auditor=None,
    compact_interval: int | None = None,
    compact_rng: str = "packed",
) -> BatchRunResult:
    """Run *reps* independent replications of a uniform policy in lockstep.

    Parameters
    ----------
    policy_factory:
        ``reps -> VectorUniformPolicy``; called once with the batch width.
    n:
        Number of honest stations per replication (n >= 1).
    adversary_factory:
        ``reps -> BatchedAdversary``; the engine resets it with a spawned
        seed, mirroring the scalar engines.
    reps:
        Number of independent replications (columns).
    max_slots:
        Hard per-replication slot limit.
    root_seed:
        Root seed or generator for the whole batch.
    halt_on_single:
        Retire a column at its first successful ``Single`` (election).
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` (or a
        realized :class:`~repro.resilience.faults.BatchFaultState`).  The
        churn realization is shared across columns; rate-based corruption
        is drawn per column per slot (vectorized fault masks).
        ``None``/disabled keeps the batch bit-identical to a fault-free
        build.
    auditor:
        Optional :class:`~repro.resilience.auditor.BatchInvariantAuditor`.
    compact_interval:
        ``None`` (default) keeps every retired column materialized for the
        whole run -- the legacy layout.  An integer ``>= 1`` enables
        dead-rep compaction: every ``compact_interval`` slots the retired
        columns are packed out of the policy, strategy and budget state,
        so per-slot work tracks the *live* width.  Results are identical
        for every surviving column across *all* interval choices; only the
        post-retirement conditioning of already-retired columns (which no
        result reads) differs.
    compact_rng:
        Transmitter-draw stream layout under compaction (ignored without
        ``compact_interval``).  ``"packed"`` (default) draws the binomial
        transmitter counts at the *active* width -- the consumed stream
        depends only on the schedule-independent active set, so results
        are bit-identical across every ``compact_interval``, but differ
        from the legacy full-width bitstream (same law; KS/differential
        cross-validated).  ``"legacy"`` keeps the full-width draw over
        frozen retired probabilities, reproducing the no-compaction
        results bit-for-bit at a per-slot cost floor of one full-width
        binomial.  Fault streams and the random jammer's Bernoulli stream
        stay pinned per original rep in both modes.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")
    if compact_interval is not None and compact_interval < 1:
        raise ConfigurationError(
            f"compact_interval must be >= 1 or None, got {compact_interval}"
        )
    if compact_rng not in ("packed", "legacy"):
        raise ConfigurationError(
            f"compact_rng must be 'packed' or 'legacy', got {compact_rng!r}"
        )

    rng = make_rng(root_seed)
    policy = policy_factory(reps)
    if policy.reps != reps:
        raise ConfigurationError(
            f"policy_factory returned width {policy.reps}, expected {reps}"
        )
    adversary = adversary_factory(reps)
    adversary.reset(seed=rng.spawn(1)[0])
    # Fault streams spawn only when faults are enabled, *after* the
    # adversary's spawn: the fault-free bitstream is untouched.
    bf = _realize_batch_faults(faults, n, reps, max_slots, rng)

    if compact_interval is not None:
        return _simulate_compact(
            policy,
            adversary,
            bf,
            rng,
            n=n,
            reps=reps,
            max_slots=max_slots,
            halt_on_single=halt_on_single,
            auditor=auditor,
            interval=int(compact_interval),
            packed_rng=compact_rng == "packed",
        )

    active = np.ones(reps, dtype=bool)
    slots = np.full(reps, max_slots, dtype=np.int64)
    elected = np.zeros(reps, dtype=bool)
    leaders = np.full(reps, -1, dtype=np.int64)
    first_single = np.full(reps, -1, dtype=np.int64)
    jams = np.zeros(reps, dtype=np.int64)
    jam_denied = np.zeros(reps, dtype=np.int64)
    transmissions = np.zeros(reps, dtype=np.int64)
    listening = np.zeros(reps, dtype=np.int64)
    policy_done = np.zeros(reps, dtype=bool)
    timed_out = np.ones(reps, dtype=bool)
    leader_survived = np.ones(reps, dtype=bool) if bf is not None else None
    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "batched", adversary.strategy_name)
        if tel.enabled
        else None
    )

    def retire(mask: np.ndarray, slot: int, as_timeout: bool = False) -> None:
        """Snapshot per-column counters for the columns in *mask*."""
        slots[mask] = slot + 1
        jams[mask] = adversary.budget.jams_granted[mask]
        jam_denied[mask] = adversary.budget.denied_requests[mask]
        timed_out[mask] = as_timeout

    # History-conditioned strategies (the adaptive family) receive the slot
    # outcomes through this hook; duck-typed test adversaries may omit it.
    notify = getattr(adversary, "observe_outcomes", None)

    # Per-slot scratch, hoisted out of the loop.  ``true8`` is refreshed
    # with ``where=active`` only: retired columns keep a stale true-state,
    # which nothing result-bearing reads (their policies, counters and
    # budget snapshots are all frozen or masked by ``active``).
    true8 = np.empty(reps, dtype=np.int8)
    p_eff_buf = np.empty(reps, dtype=np.float64)
    energy_tmp = np.empty(reps, dtype=np.int64)

    for slot in range(max_slots):
        if not active.any():
            break
        p = policy.transmit_probabilities(slot)
        view = BatchAdversaryView(
            slot=slot,
            n=n,
            reps=reps,
            budget=adversary.budget,
            transmit_probabilities=p,
            protocol_u=policy.u,
            active=active,
        )
        # Every column's budget advances in lockstep; retired columns'
        # counters were snapshotted at retirement, so the extra slots of a
        # longer-lived sibling never leak into their results.
        jammed = adversary.decide(view)

        if bf is not None:
            # Churn (shared across columns) shrinks the station pool; clock
            # skew thins the transmit probability; per-column fault masks
            # rewrite observations below.
            awake = bf.awake_count(slot)
            flip, erase, downgrade = bf.begin_slot(slot, active)
            np.clip(p, 0.0, 1.0, out=p_eff_buf)
            p_eff_buf *= bf.p_scale
            p_eff = p_eff_buf
        else:
            awake = n
            flip = erase = None
            downgrade = False
            p_eff = np.clip(p, 0.0, 1.0, out=p_eff_buf)

        # One binomial call for the whole batch; p is exact 0/1 at the
        # clamped extremes, which rng.binomial honors deterministically.
        k = rng.binomial(awake, p_eff)

        np.add(transmissions, k, out=transmissions, where=active)
        np.subtract(awake, k, out=energy_tmp)
        np.add(listening, energy_tmp, out=listening, where=active)
        if rec is not None:
            rec.record_batch_slot(slot, k, jammed, active)

        np.minimum(k, 2, out=true8, where=active)
        observed = np.where(jammed, _COLLISION, true8)
        if notify is not None:
            # Pre-fault-corruption states: the adversary knows what it
            # jammed and is not fooled by the fault model's corrupted
            # feedback -- same semantics as the scalar engines' trace.
            # (The fault block below rebinds ``observed`` via np.where, so
            # the array handed over here is a stable snapshot.)
            notify(slot, observed, active)
        if bf is not None:
            # Same order as channel.faulty.corrupt_observed: erase wins
            # (handled below by masking the policy update and the win
            # check), then downgrade, then flip.
            if downgrade:
                observed = np.where(observed == _SINGLE, _COLLISION, observed)
            if flip.any():
                flipped = np.where(
                    observed == _NULL,
                    _COLLISION,
                    np.where(observed == _COLLISION, _NULL, observed),
                )
                observed = np.where(flip, flipped, observed)
        if auditor is not None:
            if bf is not None:
                corrupted = flip | erase
                if downgrade:
                    corrupted = np.ones(reps, dtype=bool)
            else:
                corrupted = None
            auditor.observe_slot(
                slot, k, jammed, observed, corrupted=corrupted, active=active
            )

        successful_single = (k == 1) & ~jammed
        if bf is not None:
            # Only a *heard* Single resolves a column: erased or downgraded
            # Singles go unnoticed and the column keeps running.
            successful_single &= (observed == _SINGLE) & ~erase
        fresh_single = active & successful_single & (first_single < 0)
        first_single[fresh_single] = slot

        if halt_on_single:
            won = active & successful_single
            if won.any():
                idx = np.flatnonzero(won)
                # By symmetry the successful transmitter is uniform over
                # the stations awake in the slot (all stations, fault-free).
                if bf is not None:
                    leaders[idx] = bf.pick_awake_stations(slot, idx.size, rng)
                    leader_survived[idx] = bf.leaders_survive(leaders[idx])
                else:
                    leaders[idx] = rng.integers(n, size=idx.size)
                elected[idx] = True
                retire(won, slot)
                active &= ~won
                if not active.any():
                    break

        if bf is not None:
            # Erased columns get no feedback: their policies skip the slot.
            policy.observe_batch(slot, observed, active & ~erase)
        else:
            policy.observe_batch(slot, observed, active)
        done = active & policy.completed
        if done.any():
            policy_done |= done
            retire(done, slot)
            active &= ~done

    if active.any():
        # Columns that hit max_slots: slots stays at the limit.
        jams[active] = adversary.budget.jams_granted[active]
        jam_denied[active] = adversary.budget.denied_requests[active]

    if rec is not None:
        rec.finish(
            runs=reps,
            elections=int(elected.sum()),
            timeouts=int((timed_out & ~elected & ~policy_done).sum()),
            jam_denied=int(jam_denied.sum()),
            last_slot=int(slots.max()),
        )
    if bf is not None and tel.enabled:
        bf.publish(tel)
    presults = getattr(policy, "policy_results", None)
    return BatchRunResult(
        n=n,
        reps=reps,
        slots=slots,
        elected=elected,
        leaders=leaders,
        first_single_slot=first_single,
        jams=jams,
        jam_denied=jam_denied,
        transmissions=transmissions,
        listening=listening,
        policy_completed=policy_done,
        timed_out=timed_out,
        leader_survived=leader_survived,
        policy_results=presults,
    )


def _simulate_compact(
    policy: VectorUniformPolicy,
    adversary: BatchedAdversary,
    bf,
    rng,
    *,
    n: int,
    reps: int,
    max_slots: int,
    halt_on_single: bool,
    auditor,
    interval: int,
    packed_rng: bool,
) -> BatchRunResult:
    """Dead-rep compaction loop: per-slot work tracks the *live* width.

    Layout: ``live_orig`` maps live-column positions to original rep
    indices (always ascending, so winner draws keep the legacy column
    order); ``live_active`` marks live columns not yet retired; retired
    columns are packed out of the policy/strategy/budget state every
    ``interval`` slots via their ``compact(keep)`` hooks.

    Stream contract (``compact_rng`` in :func:`simulate_uniform_batched`):
    in *packed* mode the transmitter binomial is drawn at the active
    width -- per-slot stream consumption equals the number of active
    columns, presented in ascending original order, a quantity that does
    not depend on the packing schedule -- so every ``compact_interval``
    choice produces bit-identical results (same law as the legacy
    stream; KS/differential cross-validated).  In *legacy* mode the draw
    stays at the original full width with retired columns' last clipped
    probabilities frozen in ``p_full`` (their policy state is frozen, so
    the legacy engine would recompute the same values), consuming exactly
    the no-compaction bitstream: results reproduce
    ``compact_interval=None`` bit for bit.  In both modes winner draws
    use schedule-independent counts in ascending original order, fault
    masks are realized at full width per original rep, and the adversary
    conditions its own spawned stream per original rep.
    """
    live_orig = np.arange(reps, dtype=np.int64)
    live_active = np.ones(reps, dtype=bool)
    active_full = np.ones(reps, dtype=bool)
    if not packed_rng:
        p_full = np.zeros(reps, dtype=np.float64)
        p_eff_buf = np.empty(reps, dtype=np.float64)

    slots = np.full(reps, max_slots, dtype=np.int64)
    elected = np.zeros(reps, dtype=bool)
    leaders = np.full(reps, -1, dtype=np.int64)
    first_single = np.full(reps, -1, dtype=np.int64)
    fs_live = np.full(reps, -1, dtype=np.int64)
    jams = np.zeros(reps, dtype=np.int64)
    jam_denied = np.zeros(reps, dtype=np.int64)
    transmissions = np.zeros(reps, dtype=np.int64)
    listening = np.zeros(reps, dtype=np.int64)
    policy_done = np.zeros(reps, dtype=bool)
    timed_out = np.ones(reps, dtype=bool)
    leader_survived = np.ones(reps, dtype=bool) if bf is not None else None
    has_presults = policy.policy_results is not None
    presults_full = np.full(reps, -1, dtype=np.int64) if has_presults else None

    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "batched", adversary.strategy_name)
        if tel.enabled
        else None
    )
    if rec is not None or auditor is not None:
        jammed_full = np.zeros(reps, dtype=bool)
        observed_full = np.full(reps, _NULL, dtype=np.int8)
        k_buf = np.zeros(reps, dtype=np.int64) if packed_rng else None

    notify = getattr(adversary, "observe_outcomes", None)
    strat = getattr(adversary, "strategy", None)
    wants_jam = None
    if strat is not None:
        # Elide per-slot feedback when the adversary merely forwards to a
        # strategy that inherits the base no-op, and the estimator
        # materialization when the strategy never reads it.
        if (
            type(adversary).observe_outcomes is BatchedAdversary.observe_outcomes
            and type(strat).observe_outcomes
            is VectorJammingStrategy.observe_outcomes
        ):
            notify = None
        wants_u = getattr(strat, "uses_protocol_u", True)
        if type(adversary) is BatchedAdversary:
            # Inline ``decide``: grant(wants_jam_batch(...)) without the
            # extra frame.  Subclasses keep the virtual call.
            wants_jam = strat.wants_jam_batch
            adv_rng = adversary.rng
    else:
        wants_u = True
    budget = adversary.budget

    # Live-width energy accumulators, scattered back at pack/finish.  In
    # the fault-free batch ``awake == n`` every slot, so listening is
    # recovered at the end as ``n * slots - transmissions`` instead of
    # being accumulated per slot.
    tx_live = np.zeros(reps, dtype=np.int64)
    if bf is not None:
        listen_live = np.zeros(reps, dtype=np.int64)
        energy_tmp = np.empty(reps, dtype=np.int64)

    # Reused per-slot view: only the per-slot fields are rewritten.
    view = BatchAdversaryView(slot=0, n=n, reps=reps, budget=budget)

    n_live = reps
    all_live = True
    pending_retired = False
    # Scratch for the per-slot probability clamp; resized only at
    # compaction points so the hot loop never allocates for it.
    p_clip = np.empty(reps)

    def snapshot(pos: np.ndarray, orig: np.ndarray, slot: int) -> None:
        slots[orig] = slot + 1
        jams[orig] = budget.jams_granted[pos]
        jam_denied[orig] = budget.denied_requests[pos]
        timed_out[orig] = False

    for slot in range(max_slots):
        if n_live == 0:
            break
        if pending_retired and slot % interval == 0:
            # Pack the retired columns out of every per-column state.
            if has_presults:
                presults_full[live_orig] = policy.policy_results
            first_single[live_orig] = fs_live
            transmissions[live_orig] = tx_live
            if bf is not None:
                listening[live_orig] = listen_live
            keep = np.flatnonzero(live_active)
            policy.compact(keep)
            adversary.compact(keep)
            budget = adversary.budget
            view.budget = budget
            live_orig = live_orig[keep]
            fs_live = fs_live[keep]
            tx_live = tx_live[keep]
            if bf is not None:
                listen_live = listen_live[keep]
                energy_tmp = np.empty(keep.size, dtype=np.int64)
            live_active = np.ones(keep.size, dtype=bool)
            all_live = True
            pending_retired = False
            p_clip = np.empty(keep.size)

        width = live_orig.size
        p = policy.transmit_probabilities(slot)
        view.slot = slot
        view.reps = width
        view.transmit_probabilities = p
        view.protocol_u = policy.u if wants_u else None
        view.active = live_active
        if wants_jam is not None:
            jammed = budget.grant(wants_jam(view, adv_rng))
        else:
            jammed = adversary.decide(view)

        if bf is not None:
            awake = bf.awake_count(slot)
            flip_full, erase_full, downgrade = bf.begin_slot(slot, active_full)
            flip = flip_full[live_orig]
            erase = erase_full[live_orig]
        else:
            awake = n
            flip = erase = None
            downgrade = False

        if packed_rng:
            # Active-width draw, ascending original order.
            if all_live:
                p_act = np.clip(p, 0.0, 1.0, out=p_clip)
            else:
                p_act = p[live_active]
                np.clip(p_act, 0.0, 1.0, out=p_act)
            if bf is not None:
                p_act *= bf.p_scale
            k = rng.binomial(awake, p_act)
            if not all_live:
                k_act = k
                k = np.zeros(width, dtype=np.int64)
                k[live_active] = k_act
            tx_live += k
        else:
            # Full-width draw over frozen probabilities: the legacy stream.
            p_full[live_orig] = np.clip(p, 0.0, 1.0, out=p_clip)
            if bf is not None:
                np.multiply(p_full, bf.p_scale, out=p_eff_buf)
                k_all = rng.binomial(awake, p_eff_buf)
            else:
                k_all = rng.binomial(awake, p_full)
            k = k_all[live_orig]
            np.add(tx_live, k, out=tx_live, where=live_active)

        if bf is not None:
            np.subtract(awake, k, out=energy_tmp)
            np.add(listen_live, energy_tmp, out=listen_live, where=live_active)
        if rec is not None or auditor is not None:
            if packed_rng:
                k_rep = k_buf
                k_rep[:] = 0
                k_rep[live_orig] = k
            else:
                k_rep = k_all
            jammed_full[:] = False
            jammed_full[live_orig] = jammed
            if rec is not None:
                rec.record_batch_slot(slot, k_rep, jammed_full, active_full)

        observed = np.where(jammed, _COLLISION, np.minimum(k, 2))
        if notify is not None:
            notify(slot, observed, live_active)
        if bf is not None:
            if downgrade:
                observed = np.where(observed == _SINGLE, _COLLISION, observed)
            if flip.any():
                flipped = np.where(
                    observed == _NULL,
                    _COLLISION,
                    np.where(observed == _COLLISION, _NULL, observed),
                )
                observed = np.where(flip, flipped, observed)
        if auditor is not None:
            if bf is not None:
                corrupted = np.zeros(reps, dtype=bool)
                corrupted[live_orig] = flip | erase
                if downgrade:
                    corrupted = np.ones(reps, dtype=bool)
            else:
                corrupted = None
            observed_full[live_orig] = observed
            auditor.observe_slot(
                slot,
                k_rep,
                jammed_full,
                observed_full,
                corrupted=corrupted,
                active=active_full,
            )

        # For booleans ``a & ~b`` is ``a > b``; one ufunc fewer per slot.
        successful_single = (k == 1) > jammed
        if bf is not None:
            successful_single &= (observed == _SINGLE) & ~erase

        if halt_on_single:
            # A live column with a successful Single always wins here, and
            # a winner can never have first_single set already (it would
            # have won that earlier slot), so the fresh-single update
            # collapses into the win handling.  Packed draws leave k == 0
            # in retired columns, so the mask is already implicit there.
            if packed_rng or all_live:
                won = successful_single
            else:
                won = live_active & successful_single
            if won.any():
                pos = np.flatnonzero(won)
                orig = live_orig[pos]
                fs_live[pos] = slot
                if bf is not None:
                    chosen = bf.pick_awake_stations(slot, pos.size, rng)
                    leaders[orig] = chosen
                    leader_survived[orig] = bf.leaders_survive(chosen)
                else:
                    leaders[orig] = rng.integers(n, size=pos.size)
                elected[orig] = True
                snapshot(pos, orig, slot)
                live_active[pos] = False
                active_full[orig] = False
                pending_retired = True
                all_live = False
                n_live -= pos.size
                if n_live == 0:
                    break
        else:
            fresh_single = live_active & successful_single & (fs_live < 0)
            if fresh_single.any():
                fs_live[fresh_single] = slot

        if bf is not None:
            policy.observe_batch(slot, observed, live_active & ~erase)
        else:
            policy.observe_batch(slot, observed, live_active)
        done = policy.completed if all_live else live_active & policy.completed
        if done.any():
            pos = np.flatnonzero(done)
            orig = live_orig[pos]
            policy_done[orig] = True
            snapshot(pos, orig, slot)
            live_active[pos] = False
            active_full[orig] = False
            pending_retired = True
            all_live = False
            n_live -= pos.size

    if n_live:
        pos = np.flatnonzero(live_active)
        orig = live_orig[pos]
        jams[orig] = budget.jams_granted[pos]
        jam_denied[orig] = budget.denied_requests[pos]
    first_single[live_orig] = fs_live
    transmissions[live_orig] = tx_live
    if bf is not None:
        listening[live_orig] = listen_live
    else:
        # awake == n in every slot: listening = n * slots - transmissions.
        np.multiply(slots, n, out=listening)
        listening -= transmissions
    if has_presults:
        presults_full[live_orig] = policy.policy_results

    if rec is not None:
        rec.finish(
            runs=reps,
            elections=int(elected.sum()),
            timeouts=int((timed_out & ~elected & ~policy_done).sum()),
            jam_denied=int(jam_denied.sum()),
            last_slot=int(slots.max()),
        )
    if bf is not None and tel.enabled:
        bf.publish(tel)
    return BatchRunResult(
        n=n,
        reps=reps,
        slots=slots,
        elected=elected,
        leaders=leaders,
        first_single_slot=first_single,
        jams=jams,
        jam_denied=jam_denied,
        transmissions=transmissions,
        listening=listening,
        policy_completed=policy_done,
        timed_out=timed_out,
        leader_survived=leader_survived,
        policy_results=presults_full,
    )


def _realize_batch_faults(faults, n: int, reps: int, max_slots: int, rng):
    """Batched counterpart of :func:`repro.sim.engine._realize_faults`."""
    if faults is None:
        return None
    from repro.resilience.faults import BatchFaultState, FaultModel

    if isinstance(faults, FaultModel):
        if not faults.enabled:
            return None
        return faults.realize_batch(n, reps, max_slots, rng.spawn(1)[0])
    if isinstance(faults, BatchFaultState):
        return faults
    raise ConfigurationError(
        f"faults must be a FaultModel or BatchFaultState, got {type(faults).__name__}"
    )


def _true_states(k: np.ndarray) -> np.ndarray:
    """Transmitter counts -> true channel-state codes (vectorized)."""
    return np.minimum(k, 2).astype(np.int8)

"""Batched cross-replication engine for uniform protocols.

:func:`repro.sim.fast.simulate_uniform_fast` already makes one *run* cost
O(1) per slot, but Monte Carlo tables run hundreds of independent
replications and the per-slot Python interpreter overhead -- not the
sampling -- dominates the wall clock.  This engine advances ``R``
independent replications per NumPy step:

* per-replication transmit probabilities as a ``(R,)`` array
  (:class:`~repro.protocols.vector.VectorUniformPolicy`);
* transmitter counts for all replications in one
  ``rng.binomial(n, p_vec)`` call;
* vectorized slot resolution (``k == 0 / 1 / >= 2`` plus the jam mask);
* per-replication (T, 1-eps) budgets advanced in lockstep
  (:class:`~repro.adversary.budget.JammingBudgetArray`);
* an active-mask that retires finished replications without Python-level
  branching per replication.

Exactness: each column sees binomial draws with its own probability and an
independent jam/observation sequence, and evolves by the scalar policy's
update rule -- so per-replication run distributions are *identical* to
``simulate_uniform_fast`` (the per-column bitstreams differ, the laws do
not).  Cross-validated by KS tests in ``tests/sim/test_batched.py``.

Scope: uniform policies with a vector implementation, against any
registered vectorized adversary -- oblivious patterns and the adaptive
family alike.  Adaptive strategies condition on the per-column protocol
state exposed through :class:`BatchAdversaryView` and on per-slot channel
feedback delivered via the adversary's ``observe_outcomes`` hook (the
pre-fault-corruption observed states, matching the scalar trace the
adversary sees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.adversary.vector import BatchAdversaryView, BatchedAdversary
from repro.errors import ConfigurationError
from repro.protocols.vector import VectorUniformPolicy
from repro.rng import RngLike, make_rng
from repro.sim.instrumentation import EngineRecorder
from repro.sim.metrics import EnergyStats, RunResult
from repro.telemetry import get_telemetry
from repro.types import ChannelState

__all__ = ["simulate_uniform_batched", "BatchRunResult"]

_NULL = np.int8(ChannelState.NULL)
_SINGLE = np.int8(ChannelState.SINGLE)
_COLLISION = np.int8(ChannelState.COLLISION)


@dataclass(slots=True)
class BatchRunResult:
    """Columnar outcome of ``reps`` batched replications.

    All arrays have shape ``(reps,)``; :meth:`results` converts to the
    scalar :class:`~repro.sim.metrics.RunResult` list the experiment
    harness consumes.
    """

    n: int
    reps: int
    slots: np.ndarray  # int64: slots simulated before each run ended
    elected: np.ndarray  # bool
    leaders: np.ndarray  # int64, -1 where no leader
    first_single_slot: np.ndarray  # int64, -1 where none occurred
    jams: np.ndarray  # int64
    jam_denied: np.ndarray  # int64
    transmissions: np.ndarray  # int64 station-slots transmitting
    listening: np.ndarray  # int64 station-slots listening
    policy_completed: np.ndarray  # bool: column finished of its own accord
    timed_out: np.ndarray  # bool
    leader_survived: np.ndarray | None = None  # bool; None = fault-free batch
    policy_results: np.ndarray | None = None  # int64, -1 = no result

    def results(self) -> list[RunResult]:
        """Per-replication :class:`RunResult` views (harness-compatible)."""
        out = []
        for r in range(self.reps):
            elected = bool(self.elected[r])
            first = int(self.first_single_slot[r])
            presult: object | None = None
            if self.policy_results is not None and self.policy_results[r] >= 0:
                presult = int(self.policy_results[r])
            out.append(
                RunResult(
                    n=self.n,
                    slots=int(self.slots[r]),
                    elected=elected,
                    leader=int(self.leaders[r]) if elected else None,
                    first_single_slot=first if first >= 0 else None,
                    all_terminated=elected or bool(self.policy_completed[r]),
                    leaders_count=1 if elected else 0,
                    jams=int(self.jams[r]),
                    jam_denied=int(self.jam_denied[r]),
                    energy=EnergyStats(
                        transmissions=int(self.transmissions[r]),
                        listening=int(self.listening[r]),
                    ),
                    policy_result=presult,
                    timed_out=bool(self.timed_out[r]),
                    leader_survived=(
                        True
                        if self.leader_survived is None
                        else bool(self.leader_survived[r])
                    ),
                )
            )
        return out


def simulate_uniform_batched(
    policy_factory: Callable[[int], VectorUniformPolicy],
    n: int,
    adversary_factory: Callable[[int], BatchedAdversary],
    reps: int,
    max_slots: int,
    root_seed: RngLike = None,
    halt_on_single: bool = True,
    faults=None,
    auditor=None,
) -> BatchRunResult:
    """Run *reps* independent replications of a uniform policy in lockstep.

    Parameters
    ----------
    policy_factory:
        ``reps -> VectorUniformPolicy``; called once with the batch width.
    n:
        Number of honest stations per replication (n >= 1).
    adversary_factory:
        ``reps -> BatchedAdversary``; the engine resets it with a spawned
        seed, mirroring the scalar engines.
    reps:
        Number of independent replications (columns).
    max_slots:
        Hard per-replication slot limit.
    root_seed:
        Root seed or generator for the whole batch.
    halt_on_single:
        Retire a column at its first successful ``Single`` (election).
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` (or a
        realized :class:`~repro.resilience.faults.BatchFaultState`).  The
        churn realization is shared across columns; rate-based corruption
        is drawn per column per slot (vectorized fault masks).
        ``None``/disabled keeps the batch bit-identical to a fault-free
        build.
    auditor:
        Optional :class:`~repro.resilience.auditor.BatchInvariantAuditor`.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    rng = make_rng(root_seed)
    policy = policy_factory(reps)
    if policy.reps != reps:
        raise ConfigurationError(
            f"policy_factory returned width {policy.reps}, expected {reps}"
        )
    adversary = adversary_factory(reps)
    adversary.reset(seed=rng.spawn(1)[0])
    # Fault streams spawn only when faults are enabled, *after* the
    # adversary's spawn: the fault-free bitstream is untouched.
    bf = _realize_batch_faults(faults, n, reps, max_slots, rng)

    active = np.ones(reps, dtype=bool)
    slots = np.full(reps, max_slots, dtype=np.int64)
    elected = np.zeros(reps, dtype=bool)
    leaders = np.full(reps, -1, dtype=np.int64)
    first_single = np.full(reps, -1, dtype=np.int64)
    jams = np.zeros(reps, dtype=np.int64)
    jam_denied = np.zeros(reps, dtype=np.int64)
    transmissions = np.zeros(reps, dtype=np.int64)
    listening = np.zeros(reps, dtype=np.int64)
    policy_done = np.zeros(reps, dtype=bool)
    timed_out = np.ones(reps, dtype=bool)
    leader_survived = np.ones(reps, dtype=bool) if bf is not None else None
    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "batched", adversary.strategy_name)
        if tel.enabled
        else None
    )

    def retire(mask: np.ndarray, slot: int, as_timeout: bool = False) -> None:
        """Snapshot per-column counters for the columns in *mask*."""
        slots[mask] = slot + 1
        jams[mask] = adversary.budget.jams_granted[mask]
        jam_denied[mask] = adversary.budget.denied_requests[mask]
        timed_out[mask] = as_timeout

    # History-conditioned strategies (the adaptive family) receive the slot
    # outcomes through this hook; duck-typed test adversaries may omit it.
    notify = getattr(adversary, "observe_outcomes", None)

    for slot in range(max_slots):
        if not active.any():
            break
        p = policy.transmit_probabilities(slot)
        view = BatchAdversaryView(
            slot=slot,
            n=n,
            reps=reps,
            budget=adversary.budget,
            transmit_probabilities=p,
            protocol_u=policy.u,
            active=active,
        )
        # Every column's budget advances in lockstep; retired columns'
        # counters were snapshotted at retirement, so the extra slots of a
        # longer-lived sibling never leak into their results.
        jammed = adversary.decide(view)

        if bf is not None:
            # Churn (shared across columns) shrinks the station pool; clock
            # skew thins the transmit probability; per-column fault masks
            # rewrite observations below.
            awake = bf.awake_count(slot)
            flip, erase, downgrade = bf.begin_slot(slot, active)
            p_eff = np.clip(p, 0.0, 1.0) * bf.p_scale
        else:
            awake = n
            flip = erase = None
            downgrade = False
            p_eff = np.clip(p, 0.0, 1.0)

        # One binomial call for the whole batch; p is exact 0/1 at the
        # clamped extremes, which rng.binomial honors deterministically.
        k = rng.binomial(awake, p_eff)

        transmissions[active] += k[active]
        listening[active] += awake - k[active]
        if rec is not None:
            rec.record_batch_slot(slot, k, jammed, active)

        observed = np.where(jammed, _COLLISION, _true_states(k))
        if notify is not None:
            # Pre-fault-corruption states: the adversary knows what it
            # jammed and is not fooled by the fault model's corrupted
            # feedback -- same semantics as the scalar engines' trace.
            # (The fault block below rebinds ``observed`` via np.where, so
            # the array handed over here is a stable snapshot.)
            notify(slot, observed, active)
        if bf is not None:
            # Same order as channel.faulty.corrupt_observed: erase wins
            # (handled below by masking the policy update and the win
            # check), then downgrade, then flip.
            if downgrade:
                observed = np.where(observed == _SINGLE, _COLLISION, observed)
            if flip.any():
                flipped = np.where(
                    observed == _NULL,
                    _COLLISION,
                    np.where(observed == _COLLISION, _NULL, observed),
                )
                observed = np.where(flip, flipped, observed)
        if auditor is not None:
            if bf is not None:
                corrupted = flip | erase
                if downgrade:
                    corrupted = np.ones(reps, dtype=bool)
            else:
                corrupted = None
            auditor.observe_slot(
                slot, k, jammed, observed, corrupted=corrupted, active=active
            )

        successful_single = (k == 1) & ~jammed
        if bf is not None:
            # Only a *heard* Single resolves a column: erased or downgraded
            # Singles go unnoticed and the column keeps running.
            successful_single &= (observed == _SINGLE) & ~erase
        fresh_single = active & successful_single & (first_single < 0)
        first_single[fresh_single] = slot

        if halt_on_single:
            won = active & successful_single
            if won.any():
                idx = np.flatnonzero(won)
                # By symmetry the successful transmitter is uniform over
                # the stations awake in the slot (all stations, fault-free).
                if bf is not None:
                    leaders[idx] = bf.pick_awake_stations(slot, idx.size, rng)
                    leader_survived[idx] = bf.leaders_survive(leaders[idx])
                else:
                    leaders[idx] = rng.integers(n, size=idx.size)
                elected[idx] = True
                retire(won, slot)
                active &= ~won
                if not active.any():
                    break

        if bf is not None:
            # Erased columns get no feedback: their policies skip the slot.
            policy.observe_batch(slot, observed, active & ~erase)
        else:
            policy.observe_batch(slot, observed, active)
        done = active & policy.completed
        if done.any():
            policy_done |= done
            retire(done, slot)
            active &= ~done

    if active.any():
        # Columns that hit max_slots: slots stays at the limit.
        jams[active] = adversary.budget.jams_granted[active]
        jam_denied[active] = adversary.budget.denied_requests[active]

    if rec is not None:
        rec.finish(
            runs=reps,
            elections=int(elected.sum()),
            timeouts=int((timed_out & ~elected & ~policy_done).sum()),
            jam_denied=int(jam_denied.sum()),
            last_slot=int(slots.max()),
        )
    if bf is not None and tel.enabled:
        bf.publish(tel)
    presults = getattr(policy, "policy_results", None)
    return BatchRunResult(
        n=n,
        reps=reps,
        slots=slots,
        elected=elected,
        leaders=leaders,
        first_single_slot=first_single,
        jams=jams,
        jam_denied=jam_denied,
        transmissions=transmissions,
        listening=listening,
        policy_completed=policy_done,
        timed_out=timed_out,
        leader_survived=leader_survived,
        policy_results=presults,
    )


def _realize_batch_faults(faults, n: int, reps: int, max_slots: int, rng):
    """Batched counterpart of :func:`repro.sim.engine._realize_faults`."""
    if faults is None:
        return None
    from repro.resilience.faults import BatchFaultState, FaultModel

    if isinstance(faults, FaultModel):
        if not faults.enabled:
            return None
        return faults.realize_batch(n, reps, max_slots, rng.spawn(1)[0])
    if isinstance(faults, BatchFaultState):
        return faults
    raise ConfigurationError(
        f"faults must be a FaultModel or BatchFaultState, got {type(faults).__name__}"
    )


def _true_states(k: np.ndarray) -> np.ndarray:
    """Transmitter counts -> true channel-state codes (vectorized)."""
    return np.minimum(k, 2).astype(np.int8)

"""Vectorized faithful engine: per-station state for ``R`` replications.

:func:`repro.sim.engine.simulate_stations` is the ground truth -- one
Python object per station, O(n) interpreter work per slot -- and
BENCH_engines.json shows it ~3500x slower than the batched uniform
engine.  This engine keeps the *faithful* model (per-station transmit
decisions, per-station protocol state, CD-mode-filtered feedback,
per-station churn) but advances an ``(R, n)`` station-state matrix in
NumPy, one global slot per step:

* per-cell transmit decisions: one uniform per (station, rep) cell per
  slot, compared against that cell's own transmit probability;
* per-cell protocol state: a width-``n * reps``
  :class:`~repro.protocols.vector.VectorUniformPolicy` (cell ``(r, i)``
  is column ``r * n + i``), so stations within a replication may drift
  apart exactly as the scalar faithful engine allows (weak-CD
  transmitters assuming ``Collision``, churned stations missing slots);
* per-replication channel resolution, (T, 1-eps) budgets in lockstep
  (:class:`~repro.adversary.budget.JammingBudgetArray` via
  :class:`~repro.adversary.vector.BatchedAdversary`), and the fault
  layer's per-station churn/corruption via one
  :class:`~repro.resilience.faults.RealizedFaults` per replication;
* the winner of a heard ``Single`` is the *actual transmitting cell*
  (not a symmetric post-hoc draw): per-station fidelity is preserved.

RNG-stream contract: ``spawn_many(root, reps)`` yields one stream per
replication; each live replication consumes one ``(n,)`` uniform block
per slot (station order), then the engine stream serves nothing else --
leaders are read off the transmit matrix.  The *bitstream* therefore
differs from the scalar faithful engine (which spawns per-station
streams and draws lazily); the *law* is identical, which is what the
differential lockstep stack, the per-engine fixed-seed pins and the KS
cross-validation in ``tests/sim/test_vectorized.py`` verify.  See
``docs/engines.md``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.adversary.vector import (
    BatchAdversaryView,
    BatchedAdversary,
    VectorJammingStrategy,
)
from repro.errors import ConfigurationError
from repro.protocols.vector import VectorUniformPolicy
from repro.rng import RngLike, make_rng, spawn_many
from repro.sim.batched import BatchRunResult
from repro.sim.instrumentation import EngineRecorder
from repro.telemetry import get_telemetry
from repro.types import CDMode, ChannelState

__all__ = ["simulate_stations_vectorized"]

_NULL = np.int8(ChannelState.NULL)
_SINGLE = np.int8(ChannelState.SINGLE)
_COLLISION = np.int8(ChannelState.COLLISION)


def _realize_per_rep(faults, n: int, reps: int, max_slots: int, root):
    """One :class:`RealizedFaults` per replication, or ``None``.

    Streams spawn only when faults are enabled, after every pre-existing
    spawn, so the fault-free bitstream is untouched -- the same discipline
    as the scalar engines.
    """
    if faults is None:
        return None
    from repro.resilience.faults import FaultModel

    if isinstance(faults, FaultModel):
        if not faults.enabled:
            return None
        return [
            faults.realize(n, max_slots, stream)
            for stream in root.spawn(reps)
        ]
    # An already-realized schedule (tests, replay) is shared by every rep.
    return [faults] * reps


def simulate_stations_vectorized(
    policy_factory: Callable[[int], VectorUniformPolicy],
    n: int,
    adversary_factory: Callable[[int], BatchedAdversary],
    reps: int,
    max_slots: int,
    root_seed: RngLike = None,
    cd_mode: CDMode = CDMode.STRONG,
    stop_on_first_single: bool = True,
    stop_when_all_done: bool = True,
    faults=None,
    auditor=None,
) -> BatchRunResult:
    """Run *reps* faithful per-station replications in NumPy lockstep.

    Parameters
    ----------
    policy_factory:
        ``width -> VectorUniformPolicy`` called once with ``n * reps``:
        one policy column per (station, rep) cell, exactly one private
        policy copy per station as in the scalar faithful engine.
    n:
        Honest stations per replication.
    adversary_factory:
        ``reps -> BatchedAdversary``; decides one jam mask per slot over
        the replications, conditioned (like the scalar engine's probe) on
        station 0's probability/estimator hints.
    reps:
        Independent replications advanced per step.
    max_slots:
        Hard per-replication slot limit.
    root_seed:
        Root seed or generator; per-rep station streams, the adversary
        stream and (when enabled) per-rep fault streams spawn from it.
    cd_mode:
        ``STRONG`` or ``WEAK`` (uniform ``Broadcast`` protocols need a CD
        model, mirroring ``UniformStationAdapter``).
    stop_on_first_single:
        Retire a replication at its first *heard* successful ``Single``.
    stop_when_all_done:
        Retire a replication once every station is done or permanently
        crashed (the Notification criterion).
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel`; realized
        independently per replication (per-station churn, per-rep
        corruption draws), or an already-realized schedule shared by all.
    auditor:
        Optional :class:`~repro.resilience.auditor.BatchInvariantAuditor`
        of width ``reps``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")
    if cd_mode is CDMode.NO_CD:
        raise ConfigurationError(
            "uniform Broadcast-based protocols require a CD model; "
            "use a dedicated no-CD protocol instead"
        )
    weak = cd_mode is CDMode.WEAK

    width = n * reps
    root = make_rng(root_seed)
    rep_rngs = spawn_many(root, reps)
    policy = policy_factory(width)
    if policy.reps != width:
        raise ConfigurationError(
            f"policy_factory returned width {policy.reps}, expected {width}"
        )
    adversary = adversary_factory(reps)
    adversary.reset(seed=root.spawn(1)[0])
    realized = _realize_per_rep(faults, n, reps, max_slots, root)

    # Cell state, shape (reps, n).
    cell_done = np.zeros((reps, n), dtype=bool)
    cell_leader = np.zeros((reps, n), dtype=bool)
    # Replication state, shape (reps,).
    rep_active = np.ones(reps, dtype=bool)
    slots = np.full(reps, max_slots, dtype=np.int64)
    elected = np.zeros(reps, dtype=bool)
    leaders = np.full(reps, -1, dtype=np.int64)
    first_single = np.full(reps, -1, dtype=np.int64)
    jams = np.zeros(reps, dtype=np.int64)
    jam_denied = np.zeros(reps, dtype=np.int64)
    transmissions = np.zeros(reps, dtype=np.int64)
    listening = np.zeros(reps, dtype=np.int64)
    policy_done = np.zeros(reps, dtype=bool)
    timed_out = np.ones(reps, dtype=bool)
    leader_survived = np.ones(reps, dtype=bool) if realized is not None else None

    uniforms = np.empty((reps, n), dtype=np.float64)
    part = np.ones((reps, n), dtype=bool)
    crashed = np.zeros((reps, n), dtype=bool)
    flip = np.zeros(reps, dtype=bool)
    erase = np.zeros(reps, dtype=bool)
    downgrade = np.zeros(reps, dtype=bool)

    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "vectorized-faithful", adversary.strategy_name)
        if tel.enabled
        else None
    )

    notify = getattr(adversary, "observe_outcomes", None)
    strat = getattr(adversary, "strategy", None)
    if strat is not None:
        if (
            type(adversary).observe_outcomes is BatchedAdversary.observe_outcomes
            and type(strat).observe_outcomes
            is VectorJammingStrategy.observe_outcomes
        ):
            notify = None
        wants_u = getattr(strat, "uses_protocol_u", True)
    else:
        wants_u = True
    budget = adversary.budget
    view = BatchAdversaryView(slot=0, n=n, reps=reps, budget=budget)

    def retire(rows: np.ndarray, slot: int) -> None:
        slots[rows] = slot + 1
        jams[rows] = budget.jams_granted[rows]
        jam_denied[rows] = budget.denied_requests[rows]
        timed_out[rows] = False
        rep_active[rows] = False

    for slot in range(max_slots):
        live = np.flatnonzero(rep_active)
        if live.size == 0:
            break

        # (1) the adversary commits from public history; the hints mirror
        # the scalar engine's stations[0] probe (0.0 once that cell is
        # done, exactly like UniformStationAdapter.transmit_probability_hint).
        p = policy.transmit_probabilities(slot)
        pm = p.reshape(reps, n)
        p_hint = np.where(cell_done[:, 0], 0.0, pm[:, 0])
        view.slot = slot
        view.transmit_probabilities = p_hint
        view.protocol_u = policy.u.reshape(reps, n)[:, 0] if wants_u else None
        view.active = rep_active
        jammed = adversary.decide(view)

        # (2) stations act.  Each live replication consumes one (n,) block
        # of its own stream, in station order; churned-out or done cells
        # hold their state and spend no energy.
        if realized is not None:
            for r in live:
                part[r] = realized[r].station_awake(slot)
                f = realized[r].begin_slot(slot, int(part[r].sum()))
                flip[r], erase[r], downgrade[r] = f.flip, f.erase, f.downgrade
                crashed[r] = (realized[r].crash_slot >= 0) & (
                    realized[r].crash_slot <= slot
                )
            alive = part & ~cell_done
            alive &= rep_active[:, None]
        else:
            alive = ~cell_done
            alive &= rep_active[:, None]
        for r in live:
            uniforms[r] = rep_rngs[r].random(n)
        transmit = alive & (uniforms < pm.clip(0.0, 1.0))
        k = transmit.sum(axis=1)
        heard_cells = alive.sum(axis=1)
        np.add(transmissions, k, out=transmissions, where=rep_active)
        np.add(listening, heard_cells - k, out=listening, where=rep_active)

        # (3) the channel resolves per replication; fault corruption
        # rewrites the observation for every station of a rep alike.
        observed = np.where(jammed, _COLLISION, np.minimum(k, 2))
        if notify is not None:
            # Pre-corruption states: the adversary knows what it jammed.
            notify(slot, observed, rep_active)
        if realized is not None:
            observed = np.where(
                downgrade & (observed == _SINGLE), _COLLISION, observed
            )
            flipped = np.where(
                observed == _NULL,
                _COLLISION,
                np.where(observed == _COLLISION, _NULL, observed),
            )
            observed = np.where(flip, flipped, observed)
        if rec is not None:
            rec.record_batch_slot(slot, k, jammed, rep_active)
        if auditor is not None:
            corrupted = (flip | erase | downgrade) if realized is not None else None
            auditor.observe_slot(
                slot,
                k,
                jammed,
                observed,
                corrupted=corrupted,
                active=rep_active,
            )

        # A Single resolves a replication only if stations *hear* it.
        single = observed == _SINGLE
        heard = rep_active & (k == 1) & ~jammed & single
        if realized is not None:
            heard &= ~erase
        fresh = heard & (first_single < 0)
        if fresh.any():
            rows = np.flatnonzero(fresh)
            first_single[rows] = slot
            winner = np.argmax(transmit[rows], axis=1)
            leaders[rows] = winner
            if not weak:
                # Weak-CD transmitters get no feedback: the winner never
                # learns it won (the Notification problem), so no cell
                # claims leadership here.
                cell_leader[rows, winner] = True
            if realized is not None:
                leader_survived[rows] = [
                    realized[r].leader_survives(int(w))
                    for r, w in zip(rows, winner)
                ]

        # (4) feedback, CD-filtered per cell.  Strong-CD: every alive cell
        # of a heard-Single rep is done (the transmitter heard itself win,
        # listeners heard a leader exist) and none of them observes the
        # halting slot.  Weak-CD: only the listeners learn; the lone
        # transmitter gets no feedback and keeps going (the Notification
        # problem).  Erased slots deliver nothing -- except to weak-CD
        # transmitters, whose "assume Collision" needs no channel.
        if weak:
            listeners = alive & ~transmit
            resolved = listeners & heard[:, None]
            cell_done |= resolved
            observers = listeners & (~heard & (observed != _SINGLE))[:, None]
            if realized is not None:
                observers &= ~erase[:, None]
            states = np.where(
                transmit, _COLLISION, np.broadcast_to(observed[:, None], (reps, n))
            )
            active_cells = (transmit | observers).reshape(width)
            policy.observe_batch(slot, states.reshape(width), active_cells)
        else:
            if heard.any():
                resolved = alive & heard[:, None]
                cell_done |= resolved
            observers = alive & ~heard[:, None]
            if realized is not None:
                observers &= ~erase[:, None]
            states = np.broadcast_to(observed[:, None], (reps, n))
            policy.observe_batch(
                slot, states.reshape(width), observers.reshape(width)
            )
        cell_done |= policy.completed.reshape(reps, n)

        halted = heard if stop_on_first_single else np.zeros(reps, dtype=bool)
        if stop_when_all_done:
            finished = rep_active & (cell_done | crashed).all(axis=1) & ~halted
            if finished.any():
                rows = np.flatnonzero(finished)
                counts = cell_leader[rows].sum(axis=1)
                elected[rows] = counts == 1
                policy_done[rows] = True
                retire(rows, slot)
        if stop_on_first_single and heard.any():
            rows = np.flatnonzero(heard)
            elected[rows] = True
            retire(rows, slot)

    live = np.flatnonzero(rep_active)
    if live.size:
        jams[live] = budget.jams_granted[live]
        jam_denied[live] = budget.denied_requests[live]
        counts = cell_leader[live].sum(axis=1)
        elected[live] = (cell_done | crashed)[live].all(axis=1) & (counts == 1)
    # A rep whose leader cell never got marked keeps leaders == -1.
    presults = policy.policy_results
    presults_rep = None
    if presults is not None:
        # Station 0's result stands for the rep (cells agree under strong
        # CD; per-station results only exist for Estimation-style runs).
        presults_rep = presults.reshape(reps, n)[:, 0].copy()

    if rec is not None:
        rec.finish(
            runs=reps,
            elections=int(elected.sum()),
            timeouts=int(timed_out.sum()),
            jam_denied=int(jam_denied.sum()),
            last_slot=int(slots.max()),
        )
    if realized is not None and tel.enabled:
        published = []
        for r in realized:
            if id(r) not in published:
                if tel.enabled:
                    r.publish(tel)
                published.append(id(r))
    return BatchRunResult(
        n=n,
        reps=reps,
        slots=slots,
        elected=elected,
        leaders=leaders,
        first_single_slot=first_single,
        jams=jams,
        jam_denied=jam_denied,
        transmissions=transmissions,
        listening=listening,
        policy_completed=policy_done,
        timed_out=timed_out,
        leader_survived=leader_survived,
        policy_results=presults_rep,
    )

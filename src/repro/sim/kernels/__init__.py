"""Optional compiled kernels for the slot-blocked megakernel engine.

The megakernel (:mod:`repro.sim.megakernel`) spends its per-group time in
two places: the fused binomial draws (numpy's ``Generator`` -- not
JIT-able without changing the bitstream) and the LESK outcome update that
folds a free slot's transmitter counts back into the exponent vector.
This package holds the outcome-update kernel in two interchangeable
backends:

* ``numpy`` -- masked-ufunc reference implementation, always available,
  bit-identical to :meth:`VectorLESKPolicy.observe_batch`;
* ``numba`` -- a JIT single-pass loop over the same arithmetic, used when
  the optional dependency is installed (``pip install repro[perf]``).

Backend selection is soft: ``numba`` is absent from the default image, so
``auto`` resolves to ``numpy`` there and to the JIT kernel when the wheel
is present.  Both backends perform the identical sequence of float64
operations per element, so results are bit-equal by construction (pinned
by the parity tests in ``tests/sim/test_kernels.py``, which skip when
numba is unavailable).
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "HAVE_NUMBA",
    "apply_lesk_outcomes_numpy",
    "get_lesk_kernel",
    "resolve_backend",
    "warmup",
]

#: True when the optional ``numba`` wheel is importable.  Checked with
#: ``find_spec`` so merely loading this package never pays the (multi-
#: second) numba import cost.
HAVE_NUMBA: bool = importlib.util.find_spec("numba") is not None

_BACKENDS = ("auto", "numpy", "numba")


def apply_lesk_outcomes_numpy(
    u: np.ndarray,
    k: np.ndarray,
    inv_a: float,
    floor_at_zero: bool = True,
    scratch: tuple[np.ndarray, np.ndarray] | None = None,
    nonneg: bool = False,
) -> None:
    """Fold one free slot's transmitter counts into the LESK exponents.

    In-place on ``u``: columns with ``k == 0`` (Null) step down by 1
    (floored at 0 when *floor_at_zero*), columns with ``k >= 2``
    (Collision) step up by ``inv_a``; ``k == 1`` columns are untouched
    (a Single either elects -- and was compacted out before this call --
    or marks completion without moving ``u``).  The ufunc sequence and
    order match :meth:`VectorLESKPolicy.observe_batch` exactly, so the
    update is bit-identical to the per-slot engines.

    *scratch* may hold two reusable boolean buffers of ``u``'s shape (the
    megakernel passes them so its hot loop never allocates the masks).

    *nonneg* asserts ``u >= 0`` everywhere (the megakernel's invariant
    when the floor is active and the start point is non-negative): the
    Null step then runs unmasked -- ``u - nulls`` subtracts exactly 1
    where Null and exactly 0 elsewhere, and the full-width floor is the
    identity on untouched columns -- which is cheaper than the buffered
    masked ufuncs but produces bit-identical results.
    """
    if scratch is None:
        nulls = k == 0
        colls = k >= 2
    else:
        nulls, colls = scratch
        np.equal(k, 0, out=nulls)
        np.greater_equal(k, 2, out=colls)
    if nonneg and floor_at_zero:
        np.subtract(u, nulls, out=u)
        np.maximum(u, 0.0, out=u)
    else:
        np.subtract(u, 1.0, out=u, where=nulls)
        if floor_at_zero:
            np.maximum(u, 0.0, out=u, where=nulls)
    np.add(u, inv_a, out=u, where=colls)


_numba_kernel = None


def _load_numba_kernel():
    """Import numba and compile the JIT backend (cached after first use)."""
    global _numba_kernel
    if _numba_kernel is None:
        import numba

        @numba.njit(cache=True)
        def _apply_lesk_outcomes_jit(u, k, inv_a, floor_at_zero):
            for i in range(u.shape[0]):
                ki = k[i]
                if ki == 0:
                    v = u[i] - 1.0
                    if floor_at_zero and v < 0.0:
                        v = 0.0
                    u[i] = v
                elif ki >= 2:
                    u[i] = u[i] + inv_a

        def apply_lesk_outcomes_numba(
            u, k, inv_a, floor_at_zero=True, scratch=None, nonneg=False
        ):
            _apply_lesk_outcomes_jit(u, k, inv_a, floor_at_zero)

        _numba_kernel = apply_lesk_outcomes_numba
    return _numba_kernel


def resolve_backend(backend: str = "auto") -> str:
    """Map a requested backend name to the concrete one that will run.

    ``auto`` resolves to ``numba`` when the wheel is importable and to
    ``numpy`` otherwise; asking for ``numba`` explicitly without the
    dependency is a configuration error (callers that want to degrade
    silently should pass ``auto``).
    """
    if backend not in _BACKENDS:
        raise ConfigurationError(
            f"kernel backend must be one of {_BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if backend == "numba" and not HAVE_NUMBA:
        raise ConfigurationError(
            "kernel backend 'numba' requested but numba is not installed "
            "(pip install repro[perf])"
        )
    return backend


def get_lesk_kernel(backend: str = "auto"):
    """Return the LESK outcome-update callable for *backend*."""
    resolved = resolve_backend(backend)
    if resolved == "numba":
        return _load_numba_kernel()
    return apply_lesk_outcomes_numpy


def warmup(backend: str = "auto") -> str:
    """Trigger any JIT compilation outside the timed region.

    Returns the resolved backend name; benchmarks call this before the
    clock starts so the one-time numba compile never pollutes a sample.
    """
    kernel = get_lesk_kernel(backend)
    kernel(np.zeros(1), np.zeros(1, dtype=np.int64), 0.0625, True)
    return resolve_backend(backend)

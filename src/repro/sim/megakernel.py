"""Slot-blocked megakernel engine for uniform policies vs oblivious jammers.

The batched engine (:mod:`repro.sim.batched`) is dispatch-bound: ~55 Python
calls per slot (``decide``/``grant``/``observe_batch``/clips) dominate the
wall clock at realistic replication counts.  This engine removes the
per-slot dispatch for the configurations where nothing in the slot loop
actually *conditions* on per-slot randomness:

* the jam-grant schedule of an **oblivious** strategy is a pure function of
  the slot index (:meth:`VectorJammingStrategy.want_schedule`), and the
  ``(T, 1-eps)`` budget run over a deterministic want sequence produces the
  same grants for every column -- so the whole grant/deny/prefix timeline
  is precomputed by one scalar pass per block (``_BudgetSchedule``);
* a jammed slot is observed as ``Collision`` by every active column, so a
  run of ``L`` granted slots shifts the policy schedule deterministically;
  the engine fuses the run *plus the first following free slot* into a
  single ``(L+1, W)`` binomial call over the precomputed exponent ladder;
* only the free slot's outcome feeds back into policy state (elections,
  Null/Collision updates), handled at the group boundary.

Block layout
------------
Slots are processed in blocks of ``block_size``.  Each block's want flags
come from one ``want_schedule`` call, its grants from one scalar budget
pass, and its slots are then split into *groups*: maximal runs of granted
slots plus at most one trailing free slot.  Each group is one fused RNG
call; free-slot outcomes (the only conditioning points) are applied
between groups.  Winners are compacted out immediately, so draws stay at
the active width.

RNG-stream contract
-------------------
The root-seed prelude is byte-compatible with the batched engine
(``make_rng(root_seed)``; one spawned seed for the adversary).  Transmitter
draws follow the *packed* compacted stream (``compact_rng="packed"``):
active-width binomials in ascending original column order, winners' leader
draws via ``rng.integers`` in ascending original order.  A fused ``(R, W)``
draw consumes the bitstream exactly like ``R`` sequential ``(W,)`` draws
(numpy samples row-major, one probability at a time), so the fast path is
**bit-identical** to ``simulate_uniform_batched(...,
compact_rng="packed")`` for *any* ``compact_interval`` -- the packed
stream is compaction-schedule-invariant, and this engine is simply its
maximal-compaction limit.  Block size never changes results either:
grouping is derived from the grant timeline, block boundaries only split a
jam run, and split fused draws consume the bitstream exactly like the
unsplit ones -- ``block_size=1`` is bit-identical to
``block_size=max_slots`` (property-tested in
``tests/sim/test_megakernel.py``).

Fallback triggers
-----------------
Anything that makes per-slot conditioning real falls back to
:func:`repro.sim.batched.simulate_uniform_batched` with the original
arguments, recording a loud one-time ``engine_fallback_total`` counter:
adaptive or randomized strategies (no ``want_schedule``), strategies with
feedback hooks, non-default adversary classes, strict budgets, enabled
fault models, auditors, ``halt_on_single=False``, policies outside the
supported set (LESK / sweep / no-CD sweep), and ``compact_rng="legacy"``.
``compact_interval`` is accepted and ignored: the megakernel always
retires winners immediately, and the packed stream is compaction-
schedule-invariant.
"""

from __future__ import annotations

import logging
import math
import threading
from collections import deque
from typing import Callable

import numpy as np

from repro.adversary.vector import BatchedAdversary, VectorJammingStrategy
from repro.errors import ConfigurationError
from repro.protocols.vector import (
    VectorLESKPolicy,
    VectorNoCDSweepPolicy,
    VectorSweepPolicy,
    VectorUniformPolicy,
    probabilities_from_exponents,
)
from repro.rng import RngLike, make_rng
from repro.sim.batched import BatchRunResult, simulate_uniform_batched
from repro.sim.instrumentation import EngineRecorder
from repro.sim.kernels import apply_lesk_outcomes_numpy, get_lesk_kernel
from repro.telemetry import get_telemetry

__all__ = [
    "simulate_uniform_megakernel",
    "megakernel_eligibility",
    "DEFAULT_BLOCK_SLOTS",
]

#: Default number of slots whose want/grant timeline is precomputed per
#: block.  Results are provably independent of this value; it only trades
#: scheduling overhead against the cost of running the scalar budget ahead
#: of columns that may all retire early.
DEFAULT_BLOCK_SLOTS = 64

_log = logging.getLogger(__name__)

#: Fallback reasons already warned about in this process -- the warning
#: fires once per reason, the telemetry counter on every fallback.
_FALLBACK_WARNED: set[str] = set()


def _record_fallback(reason: str) -> None:
    """Loud one-time note that a megakernel request ran per-slot instead."""
    get_telemetry().counter(
        "engine_fallback_total", engine="megakernel", reason=reason
    ).inc()
    if reason not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(reason)
        _log.warning(
            "megakernel engine requested but the configuration conditions "
            "per slot (reason=%s); falling back to the batched per-slot "
            "loop",
            reason,
        )


class _BudgetSchedule:
    """Scalar replica of :class:`~repro.adversary.budget.JammingBudget`.

    With a deterministic want sequence every column's ``JammingBudgetArray``
    state is identical, so one scalar pass yields the shared grant timeline
    plus per-slot jam/denied prefix counts.  The arithmetic -- including
    the ``1e-12`` slack, the float expression order, and the lagged-min
    fold -- mirrors ``JammingBudget._allowed``/``_advance`` exactly, so
    the decisions are bit-equal to the array budget's (asserted by
    ``tests/sim/test_megakernel.py::test_budget_schedule_matches_budget``).
    """

    def __init__(self, T: int, eps: float) -> None:
        self.T = int(T)
        self.rate = 1.0 - float(eps)
        self.cap_a = self.rate * self.T + 1e-12
        self.slot = 0
        self.jams = 0
        self.denied = 0
        self.recent: deque[int] = deque([0], maxlen=self.T)
        self.min_phi = math.inf
        self.pending: deque[float] = deque([0.0])
        self.folded = 0

    def run(self, wants) -> tuple[list[bool], list[int], list[int]]:
        """Decide ``len(wants)`` slots; returns per-slot ``(grants,
        jam_prefix, denied_prefix)`` with prefixes taken *after* each
        slot's decision."""
        K = len(wants)
        grants = [False] * K
        jam_prefix = [0] * K
        denied_prefix = [0] * K
        T = self.T
        rate = self.rate
        cap_a = self.cap_a
        recent = self.recent
        pending = self.pending
        jams = self.jams
        denied = self.denied
        slot = self.slot
        min_phi = self.min_phi
        folded = self.folded
        for i in range(K):
            granted = False
            if wants[i]:
                new_prefix = jams + 1
                # (A) padded trailing window.
                if new_prefix - recent[0] <= cap_a:
                    end = slot + 1
                    # (B) all full windows ending at end.
                    if end >= T:
                        horizon = end - T
                        while pending and folded <= horizon:
                            v = pending.popleft()
                            if v < min_phi:
                                min_phi = v
                            folded += 1
                    if new_prefix - rate * end <= min_phi + 1e-12:
                        granted = True
                if not granted:
                    denied += 1
            if granted:
                jams += 1
            slot += 1
            recent.append(jams)
            pending.append(jams - rate * slot)
            grants[i] = granted
            jam_prefix[i] = jams
            denied_prefix[i] = denied
        self.jams = jams
        self.denied = denied
        self.slot = slot
        self.min_phi = min_phi
        self.folded = folded
        return grants, jam_prefix, denied_prefix

    def state(self) -> tuple:
        """Immutable snapshot, resumable via :meth:`from_state`."""
        return (
            self.slot,
            self.jams,
            self.denied,
            tuple(self.recent),
            self.min_phi,
            tuple(self.pending),
            self.folded,
        )

    @classmethod
    def from_state(cls, T: int, eps: float, state: tuple) -> "_BudgetSchedule":
        sched = cls(T, eps)
        (
            sched.slot,
            sched.jams,
            sched.denied,
            recent,
            sched.min_phi,
            pending,
            sched.folded,
        ) = state
        sched.recent = deque(recent, maxlen=sched.T)
        sched.pending = deque(pending)
        return sched


#: Cached timelines never extend past this many blocks per key; longer
#: runs continue on a private live schedule (bounds cache memory while
#: covering every realistic election length many times over).
_MAX_CACHED_BLOCKS = 256

#: Timeline cache, keyed by ``(T, eps, block_size)``.  The grant timeline
#: is a pure function of ``(T, eps)`` and the want sequence -- independent
#: of seed, reps, and policy -- so repeated runs of the same cell reuse
#: the scalar budget pass instead of re-deciding every slot.
_SCHEDULE_CACHE: dict[tuple, "_ScheduleTimeline"] = {}
_SCHEDULE_CACHE_LOCK = threading.Lock()


def _segment_grants(grants: list[bool]) -> list[tuple[int, int, bool]]:
    """Split one block's grant decisions into fused groups.

    Each segment ``(i, j, has_free)`` is a maximal run of granted slots
    ``[i, j)`` plus, when ``has_free``, one trailing free slot at ``j``.
    The segmentation is a pure function of the grant timeline, so cached
    blocks store it precomputed and the engine's hot loop never scans
    slot-by-slot in Python.
    """
    segments = []
    K = len(grants)
    i = 0
    while i < K:
        j = i
        while j < K and grants[j]:
            j += 1
        segments.append((i, j, j < K))
        i = j + 1
    return segments


class _ScheduleTimeline:
    """Grow-only cached chain of per-block budget decisions.

    ``blocks[b]`` holds ``(wants_bytes, segments, jam_prefix,
    denied_prefix)`` for the ``b``-th block of a run; ``states[b]`` is the
    schedule state *before* block ``b``.  The chain is only ever appended
    to (under the lock), so entries stay mutually consistent; a cursor
    whose want stream diverges from the cached chain drops to a private
    live schedule seeded from the last matching snapshot and leaves the
    shared chain untouched.
    """

    def __init__(self, T: int, eps: float) -> None:
        self.T = int(T)
        self.eps = float(eps)
        self.lock = threading.Lock()
        self.blocks: list[tuple] = []
        self.states: list[tuple] = [_BudgetSchedule(T, eps).state()]


def _schedule_cursor(T: int, eps: float, block_size: int) -> "_ScheduleCursor":
    key = (int(T), float(eps), int(block_size))
    with _SCHEDULE_CACHE_LOCK:
        timeline = _SCHEDULE_CACHE.get(key)
        if timeline is None:
            if len(_SCHEDULE_CACHE) >= 32:
                _SCHEDULE_CACHE.clear()
            timeline = _SCHEDULE_CACHE[key] = _ScheduleTimeline(T, eps)
    return _ScheduleCursor(timeline)


class _ScheduleCursor:
    """One run's sequential walk over a :class:`_ScheduleTimeline`.

    ``jams`` / ``denied`` track the budget counters after the last decided
    block (the survivor snapshot the engine needs at the end of a run).
    """

    def __init__(self, timeline: _ScheduleTimeline) -> None:
        self._tl = timeline
        self._b = 0
        self._live: _BudgetSchedule | None = None
        self.jams = 0
        self.denied = 0

    def next_block(
        self, wants
    ) -> tuple[list[tuple[int, int, bool]], list[int], list[int]]:
        if self._live is not None:
            return self._run_live(wants)
        tl = self._tl
        wants_bytes = wants.tobytes()
        with tl.lock:
            b = self._b
            if b < len(tl.blocks):
                entry = tl.blocks[b]
                if entry[0] == wants_bytes:
                    self._b = b + 1
                    self.jams = entry[2][-1]
                    self.denied = entry[3][-1]
                    return entry[1], entry[2], entry[3]
                # Different want stream than the cached chain: continue on
                # a private schedule, leaving the shared chain untouched.
                self._live = _BudgetSchedule.from_state(
                    tl.T, tl.eps, tl.states[b]
                )
                return self._run_live(wants)
            if b >= _MAX_CACHED_BLOCKS:
                self._live = _BudgetSchedule.from_state(
                    tl.T, tl.eps, tl.states[b]
                )
                return self._run_live(wants)
            # Extend the chain; computed under the lock so concurrent
            # cursors cannot append conflicting entries.
            sched = _BudgetSchedule.from_state(tl.T, tl.eps, tl.states[b])
            grants, jam_prefix, denied_prefix = sched.run(wants)
            segments = _segment_grants(grants)
            tl.blocks.append(
                (wants_bytes, segments, jam_prefix, denied_prefix)
            )
            tl.states.append(sched.state())
            self._b = b + 1
            self.jams = jam_prefix[-1]
            self.denied = denied_prefix[-1]
            return segments, jam_prefix, denied_prefix

    def _run_live(
        self, wants
    ) -> tuple[list[tuple[int, int, bool]], list[int], list[int]]:
        grants, jam_prefix, denied_prefix = self._live.run(wants)
        self.jams = jam_prefix[-1]
        self.denied = denied_prefix[-1]
        return _segment_grants(grants), jam_prefix, denied_prefix


class _LESKLadder:
    """Vector exponent state for :class:`VectorLESKPolicy`.

    Jam runs shift every active column by ``m / a`` (Collision observed),
    so a group's exponent rows come from one ``np.add.accumulate`` -- the
    same sequential-add float results as the per-slot policy update.  Free
    slot outcomes are folded in by the pluggable kernel
    (:mod:`repro.sim.kernels`).

    ``prepare_group`` returns the *probability* rows: with the floor
    active the exponents never go negative, so while the running upper
    bound ``ub`` (exponents only grow by ``1/a`` per slot) stays below the
    underflow guard, ``probabilities_from_exponents`` reduces bit-exactly
    to an in-place ``exp2(-rows)`` -- no ``max()`` reduction and no
    out-of-place pass on the hot path.
    """

    def __init__(self, policy: VectorLESKPolicy, kernel) -> None:
        reps = policy.reps
        # Exponents flip-flop between two full-width buffers: the shifted
        # ladder top becomes the next ``u`` without a copy, and winner
        # compaction gathers into the idle buffer via ``np.compress``.
        self._bufs = (np.empty(reps), np.empty(reps))
        self._cur = 0
        self.u = self._bufs[0][:reps]
        self.u[:] = policy.initial_u
        self.inv_a = 1.0 / policy.a
        self.floor = policy.floor_at_zero
        self.kernel = kernel
        self._u_next = self.u
        self._next_cur = 0
        self.ub = float(policy.initial_u)
        self._ub_next = self.ub
        # The exp2 shortcut (and the kernel's unmasked path) rely on the
        # exponents staying non-negative: with the floor active that is an
        # invariant as long as the start point is itself >= 0 (Null floors
        # at 0, Collision only adds).
        self._fast = bool(policy.floor_at_zero) and policy.initial_u >= 0
        # The all-Collision shortcut rewrites the masked fold as one
        # unmasked add; a compiled kernel fuses the whole fold anyway, so
        # the mask counting would only slow it down.
        self._shortcut = self._fast and kernel is apply_lesk_outcomes_numpy
        self._p1 = np.empty(reps)
        self._p2 = np.empty(2 * reps)

    def prepare_group(self, L: int, has_free: bool, width: int) -> np.ndarray:
        u = self.u
        if L == 0:
            self._u_next = u
            self._next_cur = self._cur
            self._ub_next = self.ub
            if self._fast and self.ub < 1074.0:
                p = self._p1[:width]
                np.negative(u, out=p)
                np.exp2(p, out=p)
                return p.reshape(1, width)
            return probabilities_from_exponents(u).reshape(1, width)
        if L == 1 and has_free and self._fast and self.ub + self.inv_a < 1074.0:
            # The steady-state group shape (one granted slot, one free
            # slot): two row-sized passes beat the generic ladder's
            # 2-row passes, and the shifted exponents double as the next
            # ``u`` without a copy.
            u_next = self._bufs[1 - self._cur][:width]
            np.add(u, self.inv_a, out=u_next)
            self._u_next = u_next
            self._next_cur = 1 - self._cur
            self._ub_next = self.ub + self.inv_a
            p = self._p2[: 2 * width].reshape(2, width)
            np.negative(u, out=p[0])
            np.exp2(p[0], out=p[0])
            np.negative(u_next, out=p[1])
            np.exp2(p[1], out=p[1])
            return p
        ladder = np.empty((L + 1, width))
        ladder[0] = u
        ladder[1:] = self.inv_a
        np.add.accumulate(ladder, axis=0, out=ladder)
        u_next = self._bufs[1 - self._cur][:width]
        np.copyto(u_next, ladder[L])
        self._u_next = u_next
        self._next_cur = 1 - self._cur
        ub = self.ub + L * self.inv_a
        self._ub_next = ub
        rows = ladder if has_free else ladder[:L]
        if self._fast and ub < 1074.0:
            np.negative(rows, out=rows)
            np.exp2(rows, out=rows)
            return rows
        return probabilities_from_exponents(rows)

    def commit_jams(self) -> None:
        self.u = self._u_next
        self._cur = self._next_cur
        self.ub = self._ub_next

    def apply_free_outcome(self, k: np.ndarray, scratch=None) -> None:
        """Fold a free slot's outcome into the exponents.

        Caller contract (megakernel-private): any ``k == 1`` column is a
        winner that is compacted out immediately after this call, so its
        exponent may be clobbered -- which lets the frequent no-Null case
        (every surviving column collided) collapse to one unmasked add.
        """
        self.ub += self.inv_a
        if self._shortcut and scratch is not None:
            nulls = scratch[0]
            np.equal(k, 0, out=nulls)
            if not np.count_nonzero(nulls):
                np.add(self.u, self.inv_a, out=self.u)
                return
        self.kernel(self.u, k, self.inv_a, self.floor, scratch, self._fast)

    def apply_collision_only(self) -> None:
        """Every column collided (``k >= 2`` everywhere): the fold is one
        unmasked add, independent of the floor."""
        self.ub += self.inv_a
        np.add(self.u, self.inv_a, out=self.u)

    def compact(self, keep: np.ndarray, new_width: int) -> None:
        target = self._bufs[1 - self._cur][:new_width]
        np.compress(keep, self.u, out=target)
        self.u = target
        self._cur = 1 - self._cur


def _exp2_exact(exponent: int) -> float:
    """``2 ** -exponent`` for integer exponents, bit-equal to
    :func:`probabilities_from_exponents` (exact ``ldexp``, zero at the
    same ``>= 1074`` underflow guard)."""
    return 0.0 if exponent >= 1074 else math.ldexp(1.0, -exponent)


class _SweepLadder:
    """Scalar ladder for :class:`VectorSweepPolicy`.

    The sweep advances on *every* non-Single outcome, and an active column
    never observes a Single (winners retire first, jammed singles read as
    Collision), so the whole batch shares one ``(u, ceiling)`` pair -- the
    schedule is a pure function of the slot index, the fused draws are
    bit-identical to the packed engine's, and the probability rows are
    computed from exact scalar powers of two (no ``exp2`` array pass).
    """

    def __init__(self, policy: VectorSweepPolicy) -> None:
        self.u = int(policy._u[0])
        self.ceiling = int(policy._ceiling[0])

    def _advance(self) -> None:
        self.u += 1
        if self.u > self.ceiling:
            self.u = 0
            self.ceiling *= 2

    def prepare_group(self, L: int, has_free: bool, width: int) -> np.ndarray:
        vals = []
        for _ in range(L):
            vals.append(_exp2_exact(self.u))
            self._advance()
        if has_free:
            vals.append(_exp2_exact(self.u))
        rows = np.empty((len(vals), width))
        rows[:] = np.asarray(vals, dtype=np.float64)[:, None]
        return rows

    def commit_jams(self) -> None:
        pass

    def apply_free_outcome(self, k: np.ndarray, scratch=None) -> None:
        self._advance()

    def apply_collision_only(self) -> None:
        self._advance()

    def compact(self, keep: np.ndarray, new_width: int) -> None:
        pass


class _NoCDSweepLadder(_SweepLadder):
    """Scalar ladder for :class:`VectorNoCDSweepPolicy` (each exponent of
    sweep ``K`` repeated ``K`` times; refill happens after a doubling)."""

    def __init__(self, policy: VectorNoCDSweepPolicy) -> None:
        self.u = int(policy._u[0])
        self.ceiling = int(policy._ceiling[0])
        self.repeat_left = int(policy._repeat_left[0])

    def _advance(self) -> None:
        self.repeat_left -= 1
        if self.repeat_left <= 0:
            self.u += 1
            if self.u > self.ceiling:
                self.u = 0
                self.ceiling *= 2
            self.repeat_left = self.ceiling


_LADDERS = {
    VectorLESKPolicy: _LESKLadder,
    VectorSweepPolicy: _SweepLadder,
    VectorNoCDSweepPolicy: _NoCDSweepLadder,
}


def megakernel_eligibility(
    policy,
    adversary,
    *,
    halt_on_single: bool = True,
    faults=None,
    auditor=None,
    compact_rng: str = "packed",
) -> str | None:
    """Return ``None`` when the fused fast path applies, else the reason
    the configuration must run per-slot (used as the fallback label)."""
    if not halt_on_single:
        return "halt_on_single"
    if auditor is not None:
        return "auditor"
    if faults is not None:
        from repro.resilience.faults import FaultModel

        if not (isinstance(faults, FaultModel) and not faults.enabled):
            return "faults"
    if compact_rng != "packed":
        return f"compact_rng:{compact_rng}"
    if type(policy) not in _LADDERS:
        return f"policy:{type(policy).__name__}"
    if type(adversary) is not BatchedAdversary:
        return f"adversary:{type(adversary).__name__}"
    if adversary.budget.strict:
        return "strict-budget"
    strategy = adversary.strategy
    name = getattr(strategy, "name", type(strategy).__name__)
    if (
        type(strategy).observe_outcomes
        is not VectorJammingStrategy.observe_outcomes
    ):
        return f"strategy-feedback:{name}"
    if strategy.want_schedule(0, 1) is None:
        return f"strategy:{name}"
    return None


def simulate_uniform_megakernel(
    policy_factory: Callable[[int], VectorUniformPolicy],
    n: int,
    adversary_factory: Callable[[int], BatchedAdversary],
    reps: int,
    max_slots: int,
    root_seed: RngLike = None,
    halt_on_single: bool = True,
    faults=None,
    auditor=None,
    compact_interval: int | None = None,
    compact_rng: str = "packed",
    block_size: int = DEFAULT_BLOCK_SLOTS,
    kernel_backend: str = "auto",
) -> BatchRunResult:
    """Run *reps* replications through the slot-blocked fused fast path.

    Drop-in compatible with :func:`simulate_uniform_batched` (same
    factories, same :class:`BatchRunResult`); configurations the fast path
    cannot serve delegate to the batched engine with the original
    arguments -- before the root seed is touched, so the delegated run is
    byte-identical to calling the batched engine directly.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    if compact_rng not in ("packed", "legacy"):
        raise ConfigurationError(
            f"compact_rng must be 'packed' or 'legacy', got {compact_rng!r}"
        )
    if compact_interval is not None and compact_interval < 1:
        raise ConfigurationError(
            f"compact_interval must be >= 1, got {compact_interval}"
        )
    kernel = get_lesk_kernel(kernel_backend)

    policy = policy_factory(reps)
    if policy.reps != reps:
        raise ConfigurationError(
            f"policy_factory built reps={policy.reps}, expected {reps}"
        )
    adversary = adversary_factory(reps)
    reason = megakernel_eligibility(
        policy,
        adversary,
        halt_on_single=halt_on_single,
        faults=faults,
        auditor=auditor,
        compact_rng=compact_rng,
    )
    if reason is not None:
        _record_fallback(reason)
        return simulate_uniform_batched(
            policy_factory,
            n,
            adversary_factory,
            reps,
            max_slots,
            root_seed=root_seed,
            halt_on_single=halt_on_single,
            faults=faults,
            auditor=auditor,
            compact_interval=compact_interval,
            compact_rng=compact_rng,
        )

    # -- prelude: byte-compatible with the batched engine -----------------
    rng = make_rng(root_seed)
    adversary.reset(seed=rng.spawn(1)[0])
    strategy = adversary.strategy
    schedule = _schedule_cursor(adversary.T, adversary.eps, block_size)
    if isinstance(policy, VectorLESKPolicy):
        ladder = _LESKLadder(policy, kernel)
    else:
        ladder = _LADDERS[type(policy)](policy)

    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "megakernel", adversary.strategy_name)
        if tel.enabled
        else None
    )
    if rec is not None:
        k_full = np.zeros(reps, dtype=np.int64)
        active_full = np.ones(reps, dtype=bool)
        jam_row = np.ones(reps, dtype=bool)
        free_row = np.zeros(reps, dtype=bool)

    # -- full-width results ------------------------------------------------
    slots = np.full(reps, max_slots, dtype=np.int64)
    leaders = np.full(reps, -1, dtype=np.int64)
    elected = np.zeros(reps, dtype=bool)
    first_single = np.full(reps, -1, dtype=np.int64)
    jams = np.zeros(reps, dtype=np.int64)
    jam_denied = np.zeros(reps, dtype=np.int64)
    transmissions = np.zeros(reps, dtype=np.int64)
    timed_out = np.ones(reps, dtype=bool)

    # -- packed live state -------------------------------------------------
    # Row 0: original column index; row 1: cumulative transmitter count.
    # Paired in one array so winner gathers and compactions are a single
    # fancy-index pass instead of two.
    live = np.empty((2, reps), dtype=np.int64)
    live[0] = np.arange(reps, dtype=np.int64)
    live[1] = 0
    orig = live[0]
    k_cum = live[1]
    width = reps

    binom = rng.binomial
    # Scratch views over full-width buffers; re-sliced when an election
    # shrinks the active width (a handful of times per run).
    ksum_buf = np.empty(reps, dtype=np.int64)
    null_buf = np.empty(reps, dtype=bool)
    coll_buf = np.empty(reps, dtype=bool)
    keep_buf = np.empty(reps, dtype=bool)
    ksum = ksum_buf[:width]
    b_null = null_buf[:width]
    b_coll = coll_buf[:width]
    b_keep = keep_buf[:width]
    scratch = (b_null, b_coll)
    # Election bookkeeping is deferred: only the leader draw must happen
    # in bitstream order, the rest is applied in one vectorized pass after
    # the loop.  Each event: (slot, won, transmissions, jams, denied).
    election_events: list[tuple] = []
    slot = 0
    while slot < max_slots and width:
        K = min(block_size, max_slots - slot)
        wants = strategy.want_schedule(slot, K)
        if wants is None:  # pragma: no cover - eligibility probed slot 0
            raise ConfigurationError(
                f"strategy {adversary.strategy_name!r} stopped providing a "
                f"want schedule at slot {slot}"
            )
        segments, jam_prefix, denied_prefix = schedule.next_block(wants)
        for i, j, has_free in segments:
            # One fused group: a maximal run of granted slots plus at most
            # one trailing free slot, all with exponents known up front.
            p_rows = ladder.prepare_group(j - i, has_free, width)
            k_rows = binom(n, p_rows)
            rows = k_rows.shape[0]
            if rows == 1:
                np.add(k_cum, k_rows[0], out=k_cum)
            elif rows == 2:
                np.add(k_rows[0], k_rows[1], out=ksum)
                np.add(k_cum, ksum, out=k_cum)
            else:
                np.add.reduce(k_rows, axis=0, out=ksum)
                np.add(k_cum, ksum, out=k_cum)
            if rec is not None:
                for m in range(k_rows.shape[0]):
                    k_full[:] = 0
                    k_full[orig] = k_rows[m]
                    jammed_row = jam_row if (i + m) < j else free_row
                    rec.record_batch_slot(
                        slot + i + m, k_full, jammed_row, active_full
                    )
            ladder.commit_jams()
            if not has_free:
                continue
            k = k_rows[-1]
            if k.min() >= 2:
                # All columns collided: no winners, no Nulls -- the whole
                # classification and fold collapses to one reduction plus
                # one add (the common case while p is still large).
                ladder.apply_collision_only()
                continue
            winners = np.equal(k, 1, out=b_null)
            n_won = np.count_nonzero(winners)
            if n_won:
                pair = live[:, winners]
                won = pair[0]
                leaders[won] = rng.integers(n, size=n_won)
                election_events.append(
                    (slot + j, won, pair[1], jam_prefix[j], denied_prefix[j])
                )
                if rec is not None:
                    active_full[won] = False
                keep = np.logical_not(winners, out=b_keep)
                # Fold the free outcome at full width first (winner
                # columns may be clobbered, they are dropped next), then
                # compact -- saves compacting k itself.
                ladder.apply_free_outcome(k, scratch)
                width -= n_won
                if width == 0:
                    # Empty the survivor views so the post-loop snapshot
                    # does not re-touch the final winners.
                    orig = orig[:0]
                    k_cum = k_cum[:0]
                    break
                live = live[:, keep]
                orig = live[0]
                k_cum = live[1]
                ladder.compact(keep, width)
                ksum = ksum_buf[:width]
                b_null = null_buf[:width]
                b_coll = coll_buf[:width]
                b_keep = keep_buf[:width]
                scratch = (b_null, b_coll)
            else:
                ladder.apply_free_outcome(k, scratch)
        slot += K

    if election_events:
        sizes = [event[1].size for event in election_events]
        won_all = np.concatenate([event[1] for event in election_events])
        s_all = np.repeat(
            np.array([event[0] for event in election_events], dtype=np.int64),
            sizes,
        )
        elected[won_all] = True
        first_single[won_all] = s_all
        slots[won_all] = s_all + 1
        jams[won_all] = np.repeat(
            np.array([event[3] for event in election_events], dtype=np.int64),
            sizes,
        )
        jam_denied[won_all] = np.repeat(
            np.array([event[4] for event in election_events], dtype=np.int64),
            sizes,
        )
        timed_out[won_all] = False
        transmissions[won_all] = np.concatenate(
            [event[2] for event in election_events]
        )

    # Survivors: snapshot the shared budget counters and the running
    # transmission totals (fault-free: listening = n * slots - tx).
    transmissions[orig] = k_cum
    jams[orig] = schedule.jams
    jam_denied[orig] = schedule.denied
    listening = slots * n
    listening -= transmissions
    policy_completed = np.zeros(reps, dtype=bool)

    if rec is not None:
        rec.finish(
            runs=reps,
            elections=int(elected.sum()),
            timeouts=int((timed_out & ~elected).sum()),
            jam_denied=int(jam_denied.sum()),
            last_slot=int(slots.max()),
        )
    return BatchRunResult(
        n=n,
        reps=reps,
        slots=slots,
        elected=elected,
        leaders=leaders,
        first_single_slot=first_single,
        jams=jams,
        jam_denied=jam_denied,
        transmissions=transmissions,
        listening=listening,
        policy_completed=policy_completed,
        timed_out=timed_out,
        leader_survived=None,
        policy_results=None,
    )

"""Fast vectorized engine for uniform protocols.

For a uniform protocol all stations share one state and transmit with a
common probability ``p``; the only quantity the channel depends on is the
number of transmitters ``k``, distributed ``Binomial(n, p)``.  Sampling
``k`` directly makes the per-slot cost O(1), independent of ``n`` -- this
is the standard algorithmic optimization for simulating uniform radio
protocols, and it is *exact*: the distribution of the observed state
sequence is identical to the per-station simulation (cross-validated in
``tests/sim/test_cross_validation.py``).

Semantics are strong-CD / selection-resolution: the run ends at the first
successful (non-jammed) ``Single``; the transmitting station -- by
symmetry a uniformly random one -- is the leader.  Weak-CD LESK behaves
identically up to that slot (any slot where transmitter and listener
perceptions could diverge either ends the run or collapses to the same
``Collision`` update; see DESIGN.md), so this engine also measures weak-CD
selection-resolution time.
"""

from __future__ import annotations

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.faulty import corrupt_observed
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy
from repro.rng import RngLike, make_rng
from repro.sim.engine import _realize_faults
from repro.sim.instrumentation import EngineRecorder
from repro.sim.metrics import EnergyStats, RunResult
from repro.telemetry import get_telemetry
from repro.types import ChannelState

__all__ = ["simulate_uniform_fast"]


def simulate_uniform_fast(
    policy: UniformPolicy,
    n: int,
    adversary: Adversary,
    max_slots: int,
    seed: RngLike = None,
    record_trace: bool = False,
    halt_on_single: bool = True,
    faults=None,
    auditor=None,
) -> RunResult:
    """Simulate a uniform *policy* over *n* stations against *adversary*.

    Parameters
    ----------
    policy:
        Fresh :class:`~repro.protocols.base.UniformPolicy` instance (its
        state is consumed by the run).
    n:
        Number of honest stations (n >= 1).
    adversary:
        Budget-enforced adversary; reset by the engine.
    max_slots:
        Hard slot limit.
    seed:
        Root seed or generator.
    record_trace:
        Keep the slot-by-slot trace (including ``p`` and ``u`` series).
    halt_on_single:
        End the run at the first successful ``Single`` (election / selection
        resolution).  Set to False for protocols run purely for their own
        result (e.g. standalone ``Estimation`` used as a size-approximation
        primitive), in which case Singles are passed to the policy.
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` (or realized
        schedule).  Churn shrinks the binomial's station count, clock skew
        thins the transmit probability (``p * (1 - skew_rate)``, exact for
        the transmitter-count law), and corruption rewrites the shared
        observation.  ``None``/disabled keeps the run bit-identical to a
        fault-free build.
    auditor:
        Optional :class:`~repro.resilience.auditor.InvariantAuditor`.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    rng = make_rng(seed)
    adversary.reset(seed=rng.spawn(1)[0])
    # Fault streams spawn only when faults are enabled, *after* the
    # adversary's spawn: the fault-free bitstream is untouched.
    realized = _realize_faults(faults, n, max_slots, rng)
    # The trace doubles as the adversary's observed history even when the
    # caller does not want it back; the probability/u columns are only
    # stored when tracing, keeping the hot path free of per-slot appends.
    trace = ChannelTrace(record_probabilities=record_trace)
    energy = EnergyStats()
    elected = False
    leader: int | None = None
    first_heard_single: int | None = None
    timed_out = True
    slots_run = 0
    tel = get_telemetry()
    rec = (
        EngineRecorder(tel, "fast", adversary.strategy_name)
        if tel.enabled
        else None
    )
    last_u = policy.u

    for slot in range(max_slots):
        p = policy.transmit_probability(slot)
        u = policy.u
        view = AdversaryView(
            slot=slot,
            n=n,
            trace=trace,
            budget=adversary.budget,
            transmit_probability=p,
            protocol_u=u,
        )
        jammed = adversary.decide(view)

        if realized is not None:
            # Churn shrinks the station pool; clock skew thins the transmit
            # probability (exact for the Binomial transmitter-count law).
            awake = realized.awake_count(slot)
            flags = realized.begin_slot(slot, awake)
            p_eff = p * flags.p_scale
        else:
            awake = n
            flags = None
            p_eff = p
        if p_eff <= 0.0:
            k = 0
        elif p_eff >= 1.0:
            k = awake
        else:
            k = int(rng.binomial(awake, p_eff))
        energy.transmissions += k
        energy.listening += awake - k

        outcome = resolve_slot(slot, k, jammed)
        if flags is not None:
            observed = corrupt_observed(outcome.observed_state, flags)
        else:
            observed = outcome.observed_state
        trace.append(
            transmitters=k,
            jammed=jammed,
            true_state=outcome.true_state,
            observed_state=outcome.observed_state,
            probability=p,
            u=u,
        )
        if rec is not None:
            rec.record_slot(slot, k, jammed)
        if auditor is not None:
            auditor.observe_slot(
                slot,
                k,
                jammed,
                observed,
                corrupted=flags.corrupted if flags is not None else False,
            )

        slots_run = slot + 1
        if (
            outcome.successful_single
            and observed is ChannelState.SINGLE
            and first_heard_single is None
        ):
            first_heard_single = slot
        if (
            outcome.successful_single
            and observed is ChannelState.SINGLE
            and halt_on_single
        ):
            # An erased/downgraded Single goes unheard and does not resolve
            # the election; with faults off this is successful_single as is.
            elected = True
            # By symmetry the successful transmitter is uniform over the
            # stations awake in this slot.
            if realized is not None:
                leader = realized.pick_awake_station(slot, rng)
            else:
                leader = int(rng.integers(n))
            timed_out = False
            break
        if observed is not None:
            policy.observe(slot, observed)
        if rec is not None and policy.u != last_u:
            rec.phase(slot, last_u, policy.u)
            last_u = policy.u
        if policy.completed:
            timed_out = False
            break

    leader_survived = True
    if realized is not None and leader is not None:
        leader_survived = realized.leader_survives(leader)
    if auditor is not None:
        leader_awake = True
        if realized is not None and leader is not None:
            leader_awake = realized.station_participating(leader, slots_run - 1)
        auditor.check_election(
            1 if elected else 0,
            leader=leader,
            deciding_slot=slots_run - 1 if elected else None,
            leader_transmitted=True,  # the winner is the slot's transmitter
            leader_awake=leader_awake,
        )
    if rec is not None:
        rec.finish(
            runs=1,
            elections=int(elected),
            timeouts=int(timed_out),
            jam_denied=adversary.budget.denied_requests,
            last_slot=slots_run,
        )
    if realized is not None and tel.enabled:
        realized.publish(tel)
    return RunResult(
        n=n,
        slots=slots_run,
        elected=elected,
        leader=leader,
        # Under faults only a *heard* Single counts (an erased/downgraded
        # one is invisible to stations); without faults the two agree.
        first_single_slot=(
            trace.first_single_slot if realized is None else first_heard_single
        ),
        all_terminated=elected or policy.completed,
        leaders_count=1 if elected else 0,
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        policy_result=policy.result,
        trace=trace if record_trace else None,
        timed_out=timed_out,
        leader_survived=leader_survived,
    )

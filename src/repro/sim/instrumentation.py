"""Engine-side telemetry wiring: slot-class/jam counters + window events.

The engines (:mod:`repro.sim.engine`, :mod:`repro.sim.fast`,
:mod:`repro.sim.batched`) share one recording discipline:

* a recorder is created **only when telemetry is enabled** -- the
  disabled-mode hot path carries a single ``if rec is not None`` branch
  per slot and nothing else (gated by ``benchmarks/bench_telemetry.py``);
* per-slot observations accumulate into plain Python ints;
* every ``stride`` slots (the event log's sampling stride) one
  ``slot_window`` event summarizes the window -- channel-state counts,
  jams granted, jams that landed on occupied slots;
* at run end the totals flow into the registry counter families::

      engine_runs_total{engine=}        engine_slots_total{engine=}
      elections_total{engine=}          timeouts_total{engine=}
      slot_class_total{engine=,class=}  jam_slots_total{strategy=}
      jam_occupied_total{strategy=}     jam_denied_total{strategy=}

``jam_occupied_total / jam_slots_total`` is the *jam efficiency* an
adaptive strategy is optimizing (jams spent on slots where at least one
station transmitted); E08 reports it per strategy without trace recording.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["EngineRecorder"]


class EngineRecorder:
    """Accumulates one run's telemetry; instantiate only when enabled."""

    __slots__ = (
        "tel",
        "engine",
        "strategy",
        "stride",
        "w_start",
        "w_slots",
        "w_silence",
        "w_single",
        "w_collision",
        "w_jams",
        "w_occupied",
        "t_slots",
        "t_silence",
        "t_single",
        "t_collision",
        "t_jams",
        "t_occupied",
        "started",
        "_kbuf",
        "_jbuf",
        "_abuf",
        "_brows",
    )

    def __init__(self, tel, engine: str, strategy: str):
        self.tel = tel
        self.engine = engine
        self.strategy = strategy
        self.stride = max(1, int(tel.stride))
        self.started = time.perf_counter()
        self.w_start = 0
        self.w_slots = 0
        self.w_silence = 0
        self.w_single = 0
        self.w_collision = 0
        self.w_jams = 0
        self.w_occupied = 0
        self.t_slots = 0
        self.t_silence = 0
        self.t_single = 0
        self.t_collision = 0
        self.t_jams = 0
        self.t_occupied = 0
        self._kbuf = None
        self._jbuf = None
        self._abuf = None
        self._brows = 0

    # -- per-slot observations --------------------------------------------

    def record_slot(self, slot: int, k: int, jammed: bool) -> None:
        """One scalar slot: *k* transmitters, jam grant *jammed*."""
        self.w_slots += 1
        if k == 0:
            self.w_silence += 1
        elif k == 1:
            self.w_single += 1
        else:
            self.w_collision += 1
        if jammed:
            self.w_jams += 1
            if k:
                self.w_occupied += 1
        if slot + 1 - self.w_start >= self.stride:
            self._flush(slot + 1)

    def record_batch_slot(
        self, slot: int, k: np.ndarray, jammed: np.ndarray, active: np.ndarray
    ) -> None:
        """One lockstep slot of the batched engine (active columns only).

        Per-slot reductions over the replication axis would dominate the
        engine's own cost (the batched hot loop is itself only ~a dozen
        NumPy ops/slot), so the rows are copied into a preallocated
        buffer and reduced in bulk once per window -- three memcpys per
        slot on the hot path.
        """
        kbuf = self._kbuf
        if kbuf is None:
            rows = min(self.stride, 256)
            kbuf = self._kbuf = np.empty((rows, k.shape[0]), dtype=k.dtype)
            self._jbuf = np.empty((rows, k.shape[0]), dtype=bool)
            self._abuf = np.empty((rows, k.shape[0]), dtype=bool)
        i = self._brows
        kbuf[i] = k
        self._jbuf[i] = jammed
        self._abuf[i] = active
        self._brows = i + 1
        if self._brows == kbuf.shape[0]:
            self._drain()
        if slot + 1 - self.w_start >= self.stride:
            self._drain()
            self._flush(slot + 1)

    def _drain(self) -> None:
        """Reduce the buffered rows into the window accumulators."""
        rows = self._brows
        if not rows:
            return
        k = self._kbuf[:rows]
        active = self._abuf[:rows]
        occupied = (k >= 1) & active
        n_active = int(np.count_nonzero(active))
        n_occupied = int(np.count_nonzero(occupied))
        n_single = int(np.count_nonzero((k == 1) & active))
        granted = self._jbuf[:rows] & active
        self.w_slots += n_active
        self.w_silence += n_active - n_occupied
        self.w_single += n_single
        self.w_collision += n_occupied - n_single
        self.w_jams += int(np.count_nonzero(granted))
        self.w_occupied += int(np.count_nonzero(granted & occupied))
        self._brows = 0

    def phase(self, slot: int, u_from: float, u_to: float) -> None:
        """A policy phase transition (estimator value ``u`` changed)."""
        self.tel.emit(
            "phase",
            engine=self.engine,
            slot=slot,
            u_from=float(u_from),
            u_to=float(u_to),
        )

    # -- window / run boundaries ------------------------------------------

    def _flush(self, next_start: int) -> None:
        if self.w_slots:
            self.tel.emit(
                "slot_window",
                engine=self.engine,
                start_slot=self.w_start,
                slots=self.w_slots,
                silence=self.w_silence,
                single=self.w_single,
                collision=self.w_collision,
                jams=self.w_jams,
                jam_occupied=self.w_occupied,
            )
        self.t_slots += self.w_slots
        self.t_silence += self.w_silence
        self.t_single += self.w_single
        self.t_collision += self.w_collision
        self.t_jams += self.w_jams
        self.t_occupied += self.w_occupied
        self.w_start = next_start
        self.w_slots = 0
        self.w_silence = 0
        self.w_single = 0
        self.w_collision = 0
        self.w_jams = 0
        self.w_occupied = 0

    def finish(
        self,
        runs: int,
        elections: int,
        timeouts: int,
        jam_denied: int,
        last_slot: int,
    ) -> None:
        """Flush the tail window and publish the run totals as counters."""
        self._drain()
        self._flush(last_slot)
        self.tel.observe_span(
            f"engine.{self.engine}", time.perf_counter() - self.started
        )
        metrics = self.tel.metrics
        metrics.counter("engine_runs_total", engine=self.engine).inc(runs)
        metrics.counter("engine_slots_total", engine=self.engine).inc(self.t_slots)
        if elections:
            metrics.counter("elections_total", engine=self.engine).inc(elections)
        if timeouts:
            metrics.counter("timeouts_total", engine=self.engine).inc(timeouts)
        for cls, count in (
            ("silence", self.t_silence),
            ("single", self.t_single),
            ("collision", self.t_collision),
        ):
            if count:
                metrics.counter(
                    "slot_class_total", engine=self.engine, **{"class": cls}
                ).inc(count)
        metrics.counter("jam_slots_total", strategy=self.strategy).inc(self.t_jams)
        if self.t_occupied:
            metrics.counter("jam_occupied_total", strategy=self.strategy).inc(
                self.t_occupied
            )
        if jam_denied:
            metrics.counter("jam_denied_total", strategy=self.strategy).inc(
                jam_denied
            )

"""repro -- reproduction of Klonowski & Pajak (SPAA 2015),
"Electing a Leader in Wireless Networks Quickly Despite Jamming".

A slotted single-hop radio-network simulator, the paper's jamming-resistant
leader-election protocols (LESK, LESU, and their weak-CD Notification
wrappers LEWK / LEWU), a suite of (T, 1-eps)-bounded adaptive jamming
adversaries, the baselines the paper compares against, and an experiment
harness that regenerates every quantitative claim of the paper.

Quickstart::

    from repro import elect_leader

    result = elect_leader(n=1024, protocol="lesk", eps=0.5, T=32,
                          adversary="single-suppressor", seed=42)
    print(f"leader {result.leader} elected in {result.slots} slots "
          f"({result.jams} jammed)")
"""

from repro.core.config import ElectionConfig, default_slot_budget
from repro.core.election import elect_leader, run_selection_resolution
from repro.resilience.faults import NO_FAULTS, FaultModel
from repro.sim.metrics import EnergyStats, RunResult
from repro.types import Action, CDMode, ChannelState, PerceivedState, SlotFeedback

__version__ = "1.0.0"

__all__ = [
    "elect_leader",
    "run_selection_resolution",
    "ElectionConfig",
    "default_slot_budget",
    "FaultModel",
    "NO_FAULTS",
    "RunResult",
    "EnergyStats",
    "ChannelState",
    "PerceivedState",
    "CDMode",
    "Action",
    "SlotFeedback",
    "__version__",
]

"""Core value types shared across the whole library.

The model follows Section 1.1 of Klonowski & Pajak (SPAA 2015):

* time is slotted; in every slot each station either transmits or listens;
* the channel is in one of three *true* states depending on the number of
  simultaneous transmitters: ``NULL`` (0), ``SINGLE`` (1) or ``COLLISION``
  (>= 2);
* a slot jammed by the adversary is indistinguishable from a collision, so
  the *observed* state of a jammed slot is always ``COLLISION``;
* what a particular station perceives additionally depends on the
  collision-detection (CD) mode -- see :mod:`repro.channel.feedback`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ChannelState",
    "PerceivedState",
    "CDMode",
    "Action",
    "SlotFeedback",
]


class ChannelState(enum.IntEnum):
    """True (physical) state of the channel in a slot."""

    NULL = 0
    SINGLE = 1
    COLLISION = 2

    @classmethod
    def from_transmitter_count(cls, k: int) -> "ChannelState":
        """Map the number of simultaneous transmitters to the true state."""
        if k < 0:
            raise ValueError(f"transmitter count must be >= 0, got {k}")
        if k == 0:
            return cls.NULL
        if k == 1:
            return cls.SINGLE
        return cls.COLLISION


class PerceivedState(enum.IntEnum):
    """What an individual station perceives about a slot.

    ``NULL`` / ``SINGLE`` / ``COLLISION`` mirror :class:`ChannelState`.
    ``NO_SINGLE`` is the coarse feedback of the no-CD model, where a
    listener can only tell whether exactly one station transmitted.
    ``UNKNOWN`` is what a weak-CD transmitter perceives at the physical
    layer: it knows it transmitted but learns nothing about the channel.
    (Function 3 of the paper makes the *protocol* treat this as a
    collision, but the physical perception is "unknown".)
    """

    NULL = 0
    SINGLE = 1
    COLLISION = 2
    NO_SINGLE = 3
    UNKNOWN = 4


class CDMode(enum.Enum):
    """Collision-detection capability of the stations (Section 1.1)."""

    #: Stations transmit and listen simultaneously; everyone receives the
    #: observed state of every slot.
    STRONG = "strong-cd"
    #: Only non-transmitting stations receive the observed state of the slot.
    WEAK = "weak-cd"
    #: Listeners can only distinguish ``SINGLE`` from "not single".
    NO_CD = "no-cd"


class Action(enum.IntEnum):
    """Per-slot decision of a station.

    ``SLEEP`` powers the radio down entirely: the station neither
    transmits nor hears anything (and spends no energy).  The paper's
    protocols never sleep -- every non-transmitting station listens -- but
    energy-efficient baselines (cf. the authors' ICPP'13 line of work,
    reference [13]) rely on it.
    """

    LISTEN = 0
    TRANSMIT = 1
    SLEEP = 2


@dataclass(frozen=True, slots=True)
class SlotFeedback:
    """Feedback delivered to one station at the end of one slot.

    Attributes
    ----------
    transmitted:
        Whether this station transmitted in the slot.
    perceived:
        The station's perception of the slot, after applying the CD mode
        and adversarial jamming (a jammed slot is perceived as
        ``COLLISION`` by listeners in CD models, and as ``NO_SINGLE`` in
        the no-CD model).
    """

    transmitted: bool
    perceived: PerceivedState

    @property
    def heard_single(self) -> bool:
        """True if the station (as a listener) heard a successful message."""
        return not self.transmitted and self.perceived is PerceivedState.SINGLE

"""High-level public API: configure and run jamming-resistant leader
elections without touching the engine plumbing."""

from repro.core.config import ElectionConfig, default_slot_budget
from repro.core.election import elect_leader, make_protocol_stations, run_selection_resolution

__all__ = [
    "ElectionConfig",
    "default_slot_budget",
    "elect_leader",
    "run_selection_resolution",
    "make_protocol_stations",
]

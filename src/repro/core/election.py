"""`elect_leader` -- the library's front door.

Examples
--------
Elect a leader among 1000 stations with a known adversary strength::

    from repro import elect_leader

    result = elect_leader(n=1000, protocol="lesk", eps=0.5, T=32,
                          adversary="saturating", seed=7)
    assert result.elected
    print(result.slots, "slots,", result.jams, "jammed")

Fully parameter-free weak-CD election (the paper's headline setting)::

    result = elect_leader(n=500, protocol="lewu", eps=0.5, T=32,
                          adversary="single-suppressor", seed=7)
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.base import Adversary
from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol, UniformPolicy, UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy
from repro.protocols.notification import NotificationStation
from repro.rng import RngLike
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.sim.fast_notification import simulate_notification_fast
from repro.sim.metrics import RunResult
from repro.types import CDMode

__all__ = ["elect_leader", "run_selection_resolution", "make_protocol_stations"]


def _policy_factory(config: ElectionConfig) -> Callable[[], UniformPolicy]:
    """Factory of fresh policy instances for the configured protocol."""
    if config.protocol in ("lesk", "lewk"):
        eps = config.eps
        return lambda: LESKPolicy(eps)
    if config.protocol in ("lesu", "lewu"):
        c = config.lesu_c
        return lambda: LESUPolicy(c=c)
    raise ConfigurationError(f"unknown protocol {config.protocol!r}")


def make_protocol_stations(config: ElectionConfig) -> list[StationProtocol]:
    """Fresh per-station protocol instances for a faithful-engine run."""
    factory = _policy_factory(config)
    if config.cd_mode is CDMode.STRONG:
        return [
            UniformStationAdapter(factory(), cd_mode=CDMode.STRONG)
            for _ in range(config.n)
        ]
    # Weak-CD: wrap the strong-CD first-Single algorithm in Notification.
    return [NotificationStation(factory) for _ in range(config.n)]


def _make_adversary(config: ElectionConfig) -> Adversary:
    from repro.adversary.base import JammingStrategy

    if isinstance(config.adversary, JammingStrategy):
        config.adversary.reset()
        return Adversary(config.adversary, T=config.T, eps=config.eps)
    return make_adversary(config.adversary, T=config.T, eps=config.eps)


def run_config(config: ElectionConfig, seed: RngLike = None) -> RunResult:
    """Run one election described by *config*."""
    seed = config.seed if seed is None else seed
    adversary = _make_adversary(config)
    budget = config.slot_budget()
    if config.resolved_engine() == "fast":
        if config.cd_mode is CDMode.STRONG:
            policy = _policy_factory(config)()
            return simulate_uniform_fast(
                policy,
                n=config.n,
                adversary=adversary,
                max_slots=budget,
                seed=seed,
                record_trace=config.record_trace,
            )
        # Weak-CD: the aggregate-state Notification simulator (requires the
        # paper's n >= 3; opt-in via engine="fast" -- "auto" keeps the
        # faithful per-station engine as the weak-CD ground truth).
        return simulate_notification_fast(
            _policy_factory(config),
            n=config.n,
            adversary=adversary,
            max_slots=budget,
            seed=seed,
            record_trace=config.record_trace,
        )
    stations = make_protocol_stations(config)
    return simulate_stations(
        stations,
        adversary=adversary,
        cd_mode=config.cd_mode,
        max_slots=budget,
        seed=seed,
        record_trace=config.record_trace,
        stop_on_first_single=config.cd_mode is CDMode.STRONG,
    )


def elect_leader(
    n: int,
    protocol: str = "lesk",
    eps: float = 0.5,
    T: int = 16,
    adversary: "str | object" = "none",
    seed: RngLike = None,
    max_slots: int | None = None,
    engine: str = "auto",
    record_trace: bool = False,
    lesu_c: float = 2.0,
) -> RunResult:
    """Elect a leader among *n* stations under a (T, 1-eps)-bounded jammer.

    Parameters mirror :class:`~repro.core.config.ElectionConfig`; see the
    module docstring for examples.  Returns a
    :class:`~repro.sim.metrics.RunResult`.
    """
    config = ElectionConfig(
        n=n,
        protocol=protocol,
        eps=eps,
        T=T,
        adversary=adversary,
        max_slots=max_slots,
        engine=engine,
        record_trace=record_trace,
        lesu_c=lesu_c,
    )
    return run_config(config, seed=seed)


def run_selection_resolution(
    policy: UniformPolicy,
    n: int,
    eps: float,
    T: int,
    adversary: str = "none",
    seed: RngLike = None,
    max_slots: int = 1_000_000,
    record_trace: bool = False,
) -> RunResult:
    """Run an arbitrary uniform policy until its first successful Single.

    Low-level convenience used by experiments and the applications layer.
    """
    adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_uniform_fast(
        policy,
        n=n,
        adversary=adv,
        max_slots=max_slots,
        seed=seed,
        record_trace=record_trace,
    )

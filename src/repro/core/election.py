"""`elect_leader` -- the library's front door.

Examples
--------
Elect a leader among 1000 stations with a known adversary strength::

    from repro import elect_leader

    result = elect_leader(n=1000, protocol="lesk", eps=0.5, T=32,
                          adversary="saturating", seed=7)
    assert result.elected
    print(result.slots, "slots,", result.jams, "jammed")

Fully parameter-free weak-CD election (the paper's headline setting)::

    result = elect_leader(n=500, protocol="lewu", eps=0.5, T=32,
                          adversary="single-suppressor", seed=7)
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.base import Adversary
from repro.adversary.suite import make_adversary
from repro.core.config import ElectionConfig
from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol, UniformPolicy, UniformStationAdapter
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy
from repro.protocols.notification import NotificationStation
from repro.resilience.auditor import AuditContext, InvariantAuditor
from repro.resilience.faults import FaultModel
from repro.rng import RngLike, derive_seed, make_rng
from repro.sim.engine import simulate_stations
from repro.sim.fast import simulate_uniform_fast
from repro.sim.fast_notification import simulate_notification_fast
from repro.sim.metrics import RunResult
from repro.types import CDMode

__all__ = ["elect_leader", "run_selection_resolution", "make_protocol_stations"]


def _policy_factory(config: ElectionConfig) -> Callable[[], UniformPolicy]:
    """Factory of fresh policy instances for the configured protocol."""
    if config.protocol in ("lesk", "lewk"):
        eps = config.eps
        return lambda: LESKPolicy(eps)
    if config.protocol in ("lesu", "lewu"):
        c = config.lesu_c
        return lambda: LESUPolicy(c=c)
    raise ConfigurationError(f"unknown protocol {config.protocol!r}")


def make_protocol_stations(config: ElectionConfig) -> list[StationProtocol]:
    """Fresh per-station protocol instances for a faithful-engine run."""
    factory = _policy_factory(config)
    if config.cd_mode is CDMode.STRONG:
        return [
            UniformStationAdapter(factory(), cd_mode=CDMode.STRONG)
            for _ in range(config.n)
        ]
    # Weak-CD: wrap the strong-CD first-Single algorithm in Notification.
    return [NotificationStation(factory) for _ in range(config.n)]


def _make_adversary(config: ElectionConfig) -> Adversary:
    from repro.adversary.base import JammingStrategy

    if isinstance(config.adversary, JammingStrategy):
        config.adversary.reset()
        return Adversary(config.adversary, T=config.T, eps=config.eps)
    return make_adversary(config.adversary, T=config.T, eps=config.eps)


def run_config(
    config: ElectionConfig,
    seed: RngLike = None,
    faults: "FaultModel | None" = None,
    auditor: "InvariantAuditor | None" = None,
) -> RunResult:
    """Run one election described by *config*.

    Parameters
    ----------
    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` injected into
        the engine (``None`` / a disabled model leaves the run bit-identical
        to a fault-free build).
    auditor:
        Optional :class:`~repro.resilience.auditor.InvariantAuditor`
        observing every slot and the election outcome.
    """
    seed = config.seed if seed is None else seed
    adversary = _make_adversary(config)
    budget = config.slot_budget()
    faulted = faults is not None and (
        not isinstance(faults, FaultModel) or faults.enabled
    )
    if config.resolved_engine() == "fast":
        if config.cd_mode is CDMode.STRONG:
            policy = _policy_factory(config)()
            return simulate_uniform_fast(
                policy,
                n=config.n,
                adversary=adversary,
                max_slots=budget,
                seed=seed,
                record_trace=config.record_trace,
                faults=faults,
                auditor=auditor,
            )
        if faulted or auditor is not None:
            # The aggregate-state Notification simulator tracks phase
            # *counts*, not stations, so per-station churn has no meaningful
            # embedding there; route faulted weak-CD runs through the
            # faithful engine instead.
            raise ConfigurationError(
                "fault injection / invariant auditing is not supported by "
                "the fast weak-CD engine (simulate_notification_fast); use "
                "engine='faithful' for faulted weak-CD runs"
            )
        # Weak-CD: the aggregate-state Notification simulator (requires the
        # paper's n >= 3; opt-in via engine="fast" -- "auto" keeps the
        # faithful per-station engine as the weak-CD ground truth).
        return simulate_notification_fast(
            _policy_factory(config),
            n=config.n,
            adversary=adversary,
            max_slots=budget,
            seed=seed,
            record_trace=config.record_trace,
        )
    stations = make_protocol_stations(config)
    return simulate_stations(
        stations,
        adversary=adversary,
        cd_mode=config.cd_mode,
        max_slots=budget,
        seed=seed,
        record_trace=config.record_trace,
        stop_on_first_single=config.cd_mode is CDMode.STRONG,
        faults=faults,
        auditor=auditor,
    )


def _audit_context(
    config: ElectionConfig, seed: RngLike, faults: "FaultModel | None"
) -> AuditContext:
    """Run description for replayable violation bundles."""
    return AuditContext(
        seed=seed if isinstance(seed, int) else None,
        engine=config.resolved_engine(),
        n=config.n,
        protocol=config.protocol,
        T=config.T,
        eps=config.eps,
        max_slots=config.slot_budget(),
        adversary=(
            config.adversary
            if isinstance(config.adversary, str)
            else type(config.adversary).__name__
        ),
        faults=faults if isinstance(faults, FaultModel) else None,
    )


def elect_leader(
    n: int,
    protocol: str = "lesk",
    eps: float = 0.5,
    T: int = 16,
    adversary: "str | object" = "none",
    seed: RngLike = None,
    max_slots: int | None = None,
    engine: str = "auto",
    record_trace: bool = False,
    lesu_c: float = 2.0,
    faults: "FaultModel | None" = None,
    audit: bool = False,
    max_restarts: int = 0,
) -> RunResult:
    """Elect a leader among *n* stations under a (T, 1-eps)-bounded jammer.

    Parameters mirror :class:`~repro.core.config.ElectionConfig`; see the
    module docstring for examples.  Returns a
    :class:`~repro.sim.metrics.RunResult`.

    Resilience extensions (see ``docs/resilience.md``):

    faults:
        Optional :class:`~repro.resilience.faults.FaultModel` -- station
        churn, feedback corruption, clock skew -- realized deterministically
        from the run seed.
    audit:
        Attach an :class:`~repro.resilience.auditor.InvariantAuditor` that
        checks adversary budget compliance, channel consistency and
        election safety every slot, raising
        :class:`~repro.errors.InvariantViolationError` with a replayable
        bundle on the first violation.
    max_restarts:
        Restart supervision: when the elected station was scheduled to
        crash (``leader_survived`` False), rerun the election -- modelling
        the survivors detecting the dead leader and re-electing -- up to
        this many times, each attempt on a stable derived seed.  The
        returned result's ``restarts`` field counts the reruns performed.
    """
    if max_restarts < 0:
        raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
    config = ElectionConfig(
        n=n,
        protocol=protocol,
        eps=eps,
        T=T,
        adversary=adversary,
        max_slots=max_slots,
        engine=engine,
        record_trace=record_trace,
        lesu_c=lesu_c,
    )
    # A SeedSequence would replay the identical bitstream on every restart
    # attempt (make_rng builds a fresh generator from it each call); turn it
    # into one stateful generator so attempts draw fresh randomness.  Ints
    # instead get stable per-attempt derived seeds, and None stays None.
    if seed is not None and not isinstance(seed, int):
        seed = make_rng(seed)
    result: RunResult | None = None
    for attempt in range(max_restarts + 1):
        attempt_seed = (
            derive_seed(seed, attempt)
            if isinstance(seed, int) and attempt > 0
            else seed
        )
        auditor = (
            InvariantAuditor(T, eps, context=_audit_context(config, attempt_seed, faults))
            if audit
            else None
        )
        result = run_config(config, seed=attempt_seed, faults=faults, auditor=auditor)
        result.restarts = attempt
        if result.elected and not result.leader_survived and attempt < max_restarts:
            continue
        break
    return result


def run_selection_resolution(
    policy: UniformPolicy,
    n: int,
    eps: float,
    T: int,
    adversary: str = "none",
    seed: RngLike = None,
    max_slots: int = 1_000_000,
    record_trace: bool = False,
) -> RunResult:
    """Run an arbitrary uniform policy until its first successful Single.

    Low-level convenience used by experiments and the applications layer.
    """
    adv = make_adversary(adversary, T=T, eps=eps)
    return simulate_uniform_fast(
        policy,
        n=n,
        adversary=adv,
        max_slots=max_slots,
        seed=seed,
        record_trace=record_trace,
    )

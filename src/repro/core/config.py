"""Election run configuration and slot-budget heuristics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.types import CDMode

__all__ = ["ElectionConfig", "default_slot_budget", "PROTOCOLS"]

#: Protocol name -> (CD mode, whether the station knows eps).
PROTOCOLS: dict[str, tuple[CDMode, bool]] = {
    "lesk": (CDMode.STRONG, True),
    "lesu": (CDMode.STRONG, False),
    "lewk": (CDMode.WEAK, True),
    "lewu": (CDMode.WEAK, False),
}


def default_slot_budget(n: int, eps: float, T: int, protocol: str = "lesk") -> int:
    """A generous slot limit under which the protocol succeeds w.h.p.

    Scaled from the Theorem 2.6 / 2.9 bounds with comfortable constants so
    that hitting the limit in an experiment is a red flag, not noise.  The
    weak-CD wrappers get the Lemma 3.1 factor (8) on top; LESU additionally
    pays its schedule overhead.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    log_n = max(1.0, math.log2(max(n, 2)))
    log_inv_eps = max(0.5, math.log2(1.0 / eps)) if eps < 1.0 else 0.5
    lesk_core = log_n / (eps**3 * log_inv_eps)
    base = 64.0 * max(float(T), lesk_core) + 512.0
    if protocol in ("lesu", "lewu"):
        # Schedule overhead: log(1/eps) * log log(1/eps)-ish factor plus the
        # estimation phase O(max{log n, T}).
        base *= 8.0 * max(1.0, log_inv_eps)
        base += 32.0 * max(log_n, float(T))
    if protocol in ("lewk", "lewu"):
        base *= 8.0
    return int(base)


@dataclass(slots=True)
class ElectionConfig:
    """Declarative description of one election run.

    Attributes
    ----------
    n:
        Number of honest stations.  Stations themselves never read ``n``;
        it only sizes the simulation.
    protocol:
        One of ``"lesk"``, ``"lesu"``, ``"lewk"``, ``"lewu"``.
    eps, T:
        Adversary parameters.  ``eps`` is also handed to protocols that
        *know* it (lesk / lewk); lesu / lewu never see it.
    adversary:
        Strategy name from :data:`repro.adversary.suite.STRATEGY_REGISTRY`,
        or a :class:`repro.adversary.base.JammingStrategy` instance for
        custom attacks (it is reset before the run).
    max_slots:
        Slot limit; ``None`` selects :func:`default_slot_budget`.
    engine:
        ``"auto"`` (fast for strong-CD, faithful for weak-CD),
        ``"fast"`` or ``"faithful"``.
    lesu_c:
        The calibrated Theorem 2.6 constant for LESU's ``t0``.
    """

    n: int
    protocol: str = "lesk"
    eps: float = 0.5
    T: int = 16
    adversary: "str | object" = "none"
    max_slots: int | None = None
    engine: str = "auto"
    record_trace: bool = False
    lesu_c: float = 2.0
    seed: int | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: {known}"
            )
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if not (0.0 < self.eps < 1.0):
            raise ConfigurationError(f"eps must be in (0, 1), got {self.eps}")
        if self.T < 1:
            raise ConfigurationError(f"T must be >= 1, got {self.T}")
        if self.engine not in ("auto", "fast", "faithful"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")

    @property
    def cd_mode(self) -> CDMode:
        return PROTOCOLS[self.protocol][0]

    @property
    def knows_eps(self) -> bool:
        return PROTOCOLS[self.protocol][1]

    def slot_budget(self) -> int:
        """The effective slot limit for this run."""
        if self.max_slots is not None:
            return self.max_slots
        return default_slot_budget(self.n, self.eps, self.T, self.protocol)

    def resolved_engine(self) -> str:
        """The engine this configuration will actually use."""
        if self.engine != "auto":
            return self.engine
        return "fast" if self.cd_mode is CDMode.STRONG else "faithful"

"""Executable form of the paper's analysis (Sections 2.2-2.3).

* :mod:`repro.analysis.probabilities` -- exact channel-state probabilities
  and the Lemma 2.1 bounds.
* :mod:`repro.analysis.chernoff` -- the Chernoff bound of Fact 1.
* :mod:`repro.analysis.slot_classes` -- IS/IC/CS/CC/E/R slot
  classification and the Lemma 2.3 counter relations.
* :mod:`repro.analysis.bounds` -- closed-form runtime bounds of
  Theorems 2.6/2.9/3.2/3.3 and the Lemma 2.7 lower bound.
* :mod:`repro.analysis.walks` -- drift analysis of the estimator walk.
* :mod:`repro.analysis.estimators` -- empirical statistics for the
  experiment harness (Wilson intervals, bootstrap, scaling fits).
"""

from repro.analysis.bounds import (
    estimation_result_bounds,
    lesk_exact_slot_bound,
    lesk_time_bound,
    lesu_time_bound,
    lower_bound,
    notification_time_bound,
)
from repro.analysis.chernoff import binomial_upper_tail
from repro.analysis.probabilities import (
    collision_upper_bound,
    null_upper_bound,
    p_collision,
    p_null,
    p_single,
    regular_single_lower_bound,
    single_lower_bound_exp,
    single_lower_bound_poly,
)
from repro.analysis.slot_classes import SlotClass, SlotCounts, classify_slots
from repro.analysis.walks import equilibrium_u, expected_drift, predict_election_median

__all__ = [
    "p_null",
    "p_single",
    "p_collision",
    "null_upper_bound",
    "collision_upper_bound",
    "single_lower_bound_exp",
    "single_lower_bound_poly",
    "regular_single_lower_bound",
    "binomial_upper_tail",
    "SlotClass",
    "SlotCounts",
    "classify_slots",
    "lesk_time_bound",
    "lesk_exact_slot_bound",
    "lesu_time_bound",
    "notification_time_bound",
    "lower_bound",
    "estimation_result_bounds",
    "expected_drift",
    "equilibrium_u",
    "predict_election_median",
]

"""Closed-form runtime bounds of the paper, as executable formulas.

Each function returns the bound *without* the big-O constant unless noted;
the experiment harness fits/ratios measured times against these shapes.
``log`` is base 2 throughout (the paper's convention for ``u0 = log2 n``).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "lesk_time_bound",
    "lesk_exact_slot_bound",
    "lesu_time_bound",
    "lesu_regime",
    "notification_time_bound",
    "lower_bound",
    "estimation_result_bounds",
    "estimation_time_bound",
]


def _check(n: int, eps: float, T: int) -> None:
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if not (0.0 < eps < 1.0):
        raise ConfigurationError(f"eps must be in (0, 1), got {eps}")
    if T < 1:
        raise ConfigurationError(f"T must be >= 1, got {T}")


def lesk_time_bound(n: int, eps: float, T: int) -> float:
    """Theorem 2.6 shape: ``max{T, log n / (eps^3 log(1/eps))}``.

    For eps -> 1 the ``log(1/eps)`` factor vanishes; the proof's explicit
    constant formula (:func:`lesk_exact_slot_bound`) stays finite because
    it uses ``ln a`` with ``a = 8/eps >= 8``.
    """
    _check(n, eps, T)
    a = 8.0 / eps
    return max(float(T), math.log2(n) / (eps**3 * math.log2(a)))


def lesk_exact_slot_bound(n: int, eps: float, beta: float = 1.0) -> float:
    """The explicit slot count from the proof of Theorem 2.6::

        t > (16 / (5 eps)) * (a^2 ln(3 n^beta) / (2 ln a) + a log2 n + 1)

    with ``a = 8/eps``; running LESK for this many non-``T``-dominated
    slots gives success probability ``>= 1 - 1/n^beta``.  (The proof also
    requires ``t > 3 a^2 log(3 n^beta)`` for the Chernoff step; we return
    the max of both.)
    """
    _check(n, eps, 1)
    a = 8.0 / eps
    main = (16.0 / (5.0 * eps)) * (
        a * a * math.log(3.0 * n**beta) / (2.0 * math.log(a))
        + a * math.log2(n)
        + 1.0
    )
    chernoff = 3.0 * a * a * math.log(3.0 * n**beta)
    return max(main, chernoff)


def lesu_regime(n: int, eps: float, T: int) -> int:
    """Which Theorem 2.9 regime applies: 1 if
    ``T <= log n / (eps^3 log(1/eps))``, else 2."""
    _check(n, eps, T)
    a = 8.0 / eps
    return 1 if T <= math.log2(n) / (eps**3 * math.log2(a)) else 2


def lesu_time_bound(n: int, eps: float, T: int) -> float:
    """Theorem 2.9 shape:

    * regime 1: ``(log log(1/eps) / eps^3) * log n``
    * regime 2: ``max{log log(T / (eps log n)), log(1/eps) log log(1/eps)} * T``

    ``log log`` terms are floored at 1 to keep the shape well-defined for
    small arguments (the paper's constants absorb this).
    """
    _check(n, eps, T)
    loglog_inv_eps = max(1.0, math.log2(max(2.0, math.log2(8.0 / eps))))
    log_inv_eps = max(1.0, math.log2(8.0 / eps))
    if lesu_regime(n, eps, T) == 1:
        return (loglog_inv_eps / eps**3) * math.log2(n)
    ratio = max(2.0, T / (eps * math.log2(n)))
    return max(math.log2(math.log2(ratio) + 1.0), log_inv_eps * loglog_inv_eps) * T


def notification_time_bound(t_n: float) -> float:
    """Lemma 3.1: Notification turns a first-Single time ``t(n)`` into a
    full weak-CD election in at most ``8 * t(n)`` slots."""
    if t_n <= 0:
        raise ConfigurationError(f"t(n) must be > 0, got {t_n}")
    return 8.0 * t_n


def lower_bound(n: int, eps: float, T: int) -> float:
    """Lemma 2.7: any w.h.p. election needs ``Omega(max{T, log(n)/eps})``
    slots against some (T, 1-eps)-bounded adversary.  Returned without the
    hidden constant."""
    _check(n, eps, T)
    return max(float(T), math.log2(n) / eps)


def estimation_result_bounds(n: int, T: int) -> tuple[float, float]:
    """Lemma 2.8: ``Estimation(2)`` returns ``i`` with
    ``log log n - 1 <= i <= max{log log n, log T} + 1`` w.h.p. (n >= 115)."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if T < 1:
        raise ConfigurationError(f"T must be >= 1, got {T}")
    loglog_n = math.log2(max(1.0, math.log2(n)))
    lo = loglog_n - 1.0
    hi = max(math.ceil(loglog_n), math.ceil(math.log2(T)) if T > 1 else 0.0) + 1.0
    return lo, hi


def estimation_time_bound(n: int, T: int) -> float:
    """Lemma 2.8 runtime shape ``max{log n, T}`` (rounds double, so the
    total is within 4x of the last round's length)."""
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    return max(math.log2(n), float(T))

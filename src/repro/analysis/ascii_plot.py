"""Terminal plotting for traces and experiment series.

The reproduction is plotting-library-free by design (no matplotlib in the
dependency set); figure-series experiments export CSV for external tools
and render quick-look ASCII charts for the terminal:

* :func:`sparkline` -- a one-line summary of a series;
* :func:`line_chart` -- a multi-row block chart with y-axis labels and an
  optional horizontal reference line (e.g. ``log2 n`` for estimator
  trajectories);
* :func:`histogram` -- horizontal-bar counts (e.g. election-time
  distributions).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["sparkline", "line_chart", "histogram"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _as_series(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("need a non-empty 1-D series")
    if not np.isfinite(arr).all():
        raise ConfigurationError("series contains non-finite values")
    return arr


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line unicode sparkline, resampled to *width* characters."""
    arr = _as_series(values)
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    idx = np.linspace(0, arr.size - 1, min(width, arr.size)).astype(int)
    sampled = arr[idx]
    lo, hi = float(sampled.min()), float(sampled.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * sampled.size
    levels = ((sampled - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).round()
    return "".join(_SPARK_LEVELS[int(v)] for v in levels)


def line_chart(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    y_max: float | None = None,
    reference: float | None = None,
    reference_label: str = "",
) -> str:
    """Block chart of a series with labelled y-axis.

    Parameters
    ----------
    values:
        The series (x is its index).
    width, height:
        Character dimensions of the plot area.
    y_max:
        Top of the y-axis (default: series maximum).
    reference:
        Draw a marker on the row closest to this y-value (e.g. ``log2 n``).
    reference_label:
        Text appended to the reference row.
    """
    arr = _as_series(values)
    if width < 1 or height < 2:
        raise ConfigurationError("need width >= 1 and height >= 2")
    top = float(y_max) if y_max is not None else float(max(arr.max(), 1e-12))
    if top <= 0:
        raise ConfigurationError(f"y_max must be > 0, got {top}")
    idx = np.linspace(0, arr.size - 1, min(width, arr.size)).astype(int)
    sampled = np.clip(arr[idx], 0.0, top)
    cols = sampled.size
    levels = (sampled / top * (height - 1)).round().astype(int)

    grid = [[" "] * cols for _ in range(height)]
    for col, level in enumerate(levels):
        for r in range(level + 1):
            grid[height - 1 - r][col] = "#" if r == level else "."
    ref_row = None
    if reference is not None:
        ref_row = height - 1 - int(
            round(min(max(reference, 0.0), top) / top * (height - 1))
        )

    lines = []
    for r, row in enumerate(grid):
        y = top * (height - 1 - r) / (height - 1)
        suffix = f" <- {reference_label}" if (r == ref_row and reference_label) else (
            " <-" if r == ref_row else ""
        )
        lines.append(f"{y:8.1f} |{''.join(row)}{suffix}")
    lines.append(f"{'':8s} +{'-' * cols}")
    lines.append(f"{'':10s}0 .. {arr.size - 1} (x = series index)")
    return "\n".join(lines)


def histogram(
    values: Sequence[float], bins: int = 10, width: int = 40
) -> str:
    """Horizontal-bar histogram with counts."""
    arr = _as_series(values)
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(math.ceil(count / peak * width)) if count else ""
        lines.append(f"[{lo:10.1f}, {hi:10.1f})  {bar} {count}")
    return "\n".join(lines)

"""Drift analysis of the LESK estimator walk (Section 2.2 intuition).

The estimator ``u`` performs a biased random walk: ``-1`` on ``Null``,
``+1/a`` on observed ``Collision``.  With each station transmitting with
probability ``p = 2**-u``, the expected one-slot drift without jamming is::

    drift(u) = -P[Null] + P[Collision] / a

A jammed slot contributes ``+1/a`` deterministically, so the worst-case
drift under a jam-fraction ``q`` is
``(1-q) * drift(u) + q / a``.  The walk's attractor (where drift crosses
zero) sits below ``log2 n``; Lemma 2.4's regular band contains it for all
``q <= 1 - eps``, which is the mechanism behind Theorem 2.6.
"""

from __future__ import annotations

import math

from repro.analysis.probabilities import p_collision, p_null, p_single
from repro.errors import ConfigurationError
from repro.protocols.base import probability_from_exponent

__all__ = ["expected_drift", "equilibrium_u", "predict_election_median"]


def expected_drift(u: float, n: int, a: float, jam_fraction: float = 0.0) -> float:
    """Expected one-slot change of ``u`` at position *u*.

    Parameters
    ----------
    u:
        Current estimator value (transmission probability ``2**-u``).
    n:
        Number of stations.
    a:
        Collision weight ``a = 8/eps``.
    jam_fraction:
        Long-run fraction ``q`` of slots the adversary jams; jammed slots
        always push ``+1/a``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if a <= 0:
        raise ConfigurationError(f"a must be > 0, got {a}")
    if not (0.0 <= jam_fraction <= 1.0):
        raise ConfigurationError(f"jam_fraction must be in [0,1], got {jam_fraction}")
    p = probability_from_exponent(u)
    clear = -p_null(n, p) + p_collision(n, p) / a
    return (1.0 - jam_fraction) * clear + jam_fraction / a


def equilibrium_u(
    n: int, a: float, jam_fraction: float = 0.0, tol: float = 1e-9
) -> float:
    """Zero-drift point of the walk, by bisection over ``u in [0, log2 n + 40]``.

    Drift is positive for small ``u`` (collisions dominate) and negative
    for large ``u`` (silences dominate) as long as ``jam_fraction < 1``;
    the crossing is unique because ``P[Null]`` increases and
    ``P[Collision]`` decreases monotonically in ``u``.
    """
    if jam_fraction >= 1.0:
        raise ConfigurationError("no equilibrium when every slot is jammed")
    lo, hi = 0.0, math.log2(max(n, 2)) + 40.0
    if expected_drift(lo, n, a, jam_fraction) <= 0.0:
        return lo
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if expected_drift(mid, n, a, jam_fraction) > 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def predict_election_median(
    n: int,
    eps: float,
    jam_fraction: float = 0.0,
    quantile: float = 0.5,
    max_slots: int = 1_000_000,
) -> int:
    """Fluid-model prediction of LESK's election-time quantile.

    Replaces the stochastic walk by its expected drift (the "fluid"
    approximation: ``u`` follows its mean path, justified because the
    per-slot steps are small) and accumulates the exact per-slot Single
    probability along that path; returns the first slot where the survival
    probability drops below ``1 - quantile``.

    Despite its simplicity the model matches the measured medians of
    experiment T1 to within ~1 slot across four orders of magnitude in
    ``n`` (see ``tests/analysis/test_bounds_and_walks.py``) -- the climb
    phase is nearly deterministic, which is also why the measured T1
    variance is so small.

    Parameters
    ----------
    n, eps:
        Network size and LESK's parameter.
    jam_fraction:
        Long-run fraction of slots jammed (0 for a quiet channel); jams
        both suppress Singles and feed the drift's ``+1/a`` term.
    quantile:
        Which election-time quantile to return (0.5 = median).
    """
    if not (0.0 < quantile < 1.0):
        raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
    if not (0.0 <= jam_fraction < 1.0):
        raise ConfigurationError(
            f"jam_fraction must be in [0, 1), got {jam_fraction}"
        )
    a = 8.0 / eps
    survival = 1.0
    u = 0.0
    for t in range(1, max_slots + 1):
        p = probability_from_exponent(u)
        p_single_clear = p_single(n, p) * (1.0 - jam_fraction)
        survival *= 1.0 - p_single_clear
        if survival <= 1.0 - quantile:
            return t
        u = max(0.0, u + expected_drift(u, n, a, jam_fraction))
    return max_slots

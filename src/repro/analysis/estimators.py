"""Empirical statistics for the experiment harness.

Self-contained implementations (no SciPy dependency in the library) of the
estimators the experiments report:

* Wilson score intervals for success probabilities;
* percentile bootstrap confidence intervals for means/medians;
* least-squares fits for scaling laws (``t ~ a * log2(n) + b`` and log-log
  power-law slopes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import make_rng

__all__ = [
    "wilson_interval",
    "bootstrap_ci",
    "LinearFit",
    "fit_linear",
    "fit_log2_scaling",
    "fit_power_law",
    "geometric_mean",
    "censored_median",
    "survival_curve",
]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be > 0, got {trials}")
    if not (0 <= successes <= trials):
        raise ConfigurationError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p_hat + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
    lo = max(0.0, center - half)
    hi = min(1.0, center + half)
    # The interval is exact at the extremes; guard against float epsilon.
    if successes == 0:
        lo = 0.0
    if successes == trials:
        hi = 1.0
    return lo, hi


def bootstrap_ci(
    data: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for *statistic* of *data*."""
    arr = np.asarray(data, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("bootstrap_ci needs non-empty data")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = make_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


@dataclass(frozen=True, slots=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept`` with fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x):
        """Evaluate the fitted line at *x* (scalar or array)."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` on ``x``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ConfigurationError("fit_linear needs >= 2 matching points")
    A = np.vstack([x, np.ones_like(x)]).T
    coeffs, *_ = np.linalg.lstsq(A, y, rcond=None)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    resid = y - (slope * x + intercept)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2)


def fit_log2_scaling(n_values: Sequence[float], times: Sequence[float]) -> LinearFit:
    """Fit ``t ~ slope * log2(n) + intercept`` -- the Theorem 2.6 shape.

    A good LESK reproduction shows high ``r_squared`` and a stable slope
    across adversaries (T1).
    """
    return fit_linear(np.log2(np.asarray(n_values, dtype=np.float64)), times)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Fit ``y ~ C * x**slope`` by least squares in log-log space.

    ``slope`` distinguishes polylog exponents empirically: measured
    LESK ~1 vs ARS >~2 in experiment T7 (in log n).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ConfigurationError("fit_power_law needs strictly positive data")
    return fit_linear(np.log2(x), np.log2(y))


def geometric_mean(data: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(data, dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise ConfigurationError("geometric_mean needs non-empty positive data")
    return float(np.exp(np.mean(np.log(arr))))


def censored_median(values: Sequence[float], cap: float) -> tuple[float, bool]:
    """Median of right-censored data (timeouts recorded at *cap*).

    With a common censoring point the sample median is exact as long as
    fewer than half the observations are censored; otherwise only the
    lower bound ``cap`` can be claimed.  Returns ``(value, exact)`` --
    when ``exact`` is false the true median is ``>= value = cap``.

    This is the statistic experiment tables should report when some runs
    hit their slot budget: averaging censored values *underestimates*,
    while this estimator stays honest.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("censored_median needs non-empty data")
    if np.any(arr > cap + 1e-9):
        raise ConfigurationError("observations exceed the declared cap")
    censored = int(np.sum(arr >= cap - 1e-9))
    if censored * 2 >= arr.size:
        return float(cap), False
    return float(np.median(arr)), True


def survival_curve(values: Sequence[float], cap: float) -> tuple[np.ndarray, np.ndarray]:
    """Empirical survival function S(t) = P[time > t] with censoring.

    Returns ``(times, survival)`` step-function points: with a single
    common censoring point, the Kaplan-Meier estimator reduces to the
    empirical survival of the uncensored observations, truncated at the
    cap.  Useful for figure-style comparisons of election-time tails.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("survival_curve needs non-empty data")
    uncensored = arr[arr < cap - 1e-9]
    times = np.unique(uncensored)
    n = arr.size
    survival = np.array([np.sum(arr > t) / n for t in times], dtype=np.float64)
    return times, survival

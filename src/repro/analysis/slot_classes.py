"""Slot classification IS / IC / CS / CC / E / R (Section 2.2).

Given a LESK trace -- the estimator value ``u`` at the start of each slot,
the observed state, and the jam flags -- every slot before the election
falls into exactly one class (``u0 = log2 n``, ``a = 8/eps``):

* **E**  -- jammed by the adversary;
* **IS** -- irregular silence:  ``u <= u0 - log2(2 ln a)`` and ``Null``;
* **IC** -- irregular collision: ``u >= u0 + log2(a)/2`` and ``Collision``
  (not jammed);
* **CS** -- correcting silence: ``u >= u0 + log2(a)/2 + 1`` and ``Null``;
* **CC** -- correcting collision: ``u <= u0 - log2(2 ln a)`` and
  ``Collision`` (not jammed);
* **R**  -- everything else (the *regular* slots, where
  ``u0 - log2(2 ln a) <= u <= u0 + log2(a)/2 + 1`` and Lemma 2.4 gives a
  constant Single probability).

Lemma 2.3 relates the class counters; :func:`verify_lemma_2_3` checks the
deterministic inequalities (4) and (5) on a real trace:

* (4) ``CS <= (IC + E) / a``
* (5) ``CC <= IS * a + u0 * a``
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.types import ChannelState

__all__ = [
    "SlotClass",
    "SlotCounts",
    "classify_slots",
    "classify_trace",
    "verify_lemma_2_3",
    "theorem_2_6_regular_floor",
]


class SlotClass(enum.IntEnum):
    """Slot classes of Section 2.2."""

    REGULAR = 0
    IRREGULAR_SILENCE = 1
    IRREGULAR_COLLISION = 2
    CORRECTING_SILENCE = 3
    CORRECTING_COLLISION = 4
    JAMMED = 5
    SINGLE = 6  # the slot that ends the run (not classified by the paper)


@dataclass(frozen=True, slots=True)
class SlotCounts:
    """Counters of the Section 2.2 slot classes."""

    t: int
    R: int
    IS: int
    IC: int
    CS: int
    CC: int
    E: int
    singles: int

    def check_partition(self) -> bool:
        """Lemma 2.3(1): the classes partition the pre-election slots."""
        return self.t == self.R + self.IS + self.IC + self.CS + self.CC + self.E + self.singles


def band_thresholds(n: int, a: float) -> tuple[float, float]:
    """The classification thresholds ``(lo, hi)``:
    ``lo = u0 - log2(2 ln a)`` and ``hi = u0 + log2(a)/2``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if a <= 1.0:
        raise ConfigurationError(f"a must be > 1, got {a}")
    u0 = math.log2(n)
    lo = u0 - math.log2(2.0 * math.log(a))
    hi = u0 + 0.5 * math.log2(a)
    return lo, hi


def classify_slots(
    u: np.ndarray,
    observed: np.ndarray,
    jammed: np.ndarray,
    n: int,
    a: float,
) -> np.ndarray:
    """Vectorized classification; returns an array of :class:`SlotClass`.

    Parameters
    ----------
    u:
        Estimator value at the *start* of each slot.
    observed:
        Observed channel states (int codes of :class:`ChannelState`).
    jammed:
        Jam flags.
    n, a:
        Network size and the LESK parameter ``a = 8/eps``.
    """
    u = np.asarray(u, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.int8)
    jammed = np.asarray(jammed, dtype=bool)
    if not (u.shape == observed.shape == jammed.shape):
        raise ConfigurationError("u, observed and jammed must have equal shapes")
    lo, hi = band_thresholds(n, a)

    out = np.full(u.shape, int(SlotClass.REGULAR), dtype=np.int8)
    is_null = observed == int(ChannelState.NULL)
    is_coll = observed == int(ChannelState.COLLISION)
    is_single = observed == int(ChannelState.SINGLE)

    out[jammed] = int(SlotClass.JAMMED)
    free = ~jammed
    out[free & is_null & (u <= lo)] = int(SlotClass.IRREGULAR_SILENCE)
    out[free & is_null & (u >= hi + 1.0)] = int(SlotClass.CORRECTING_SILENCE)
    out[free & is_coll & (u >= hi)] = int(SlotClass.IRREGULAR_COLLISION)
    out[free & is_coll & (u <= lo)] = int(SlotClass.CORRECTING_COLLISION)
    out[free & is_single] = int(SlotClass.SINGLE)
    return out


def counts_from_classes(classes: np.ndarray) -> SlotCounts:
    """Aggregate a class array into :class:`SlotCounts`."""
    classes = np.asarray(classes)
    count = lambda c: int(np.count_nonzero(classes == int(c)))  # noqa: E731
    return SlotCounts(
        t=int(classes.size),
        R=count(SlotClass.REGULAR),
        IS=count(SlotClass.IRREGULAR_SILENCE),
        IC=count(SlotClass.IRREGULAR_COLLISION),
        CS=count(SlotClass.CORRECTING_SILENCE),
        CC=count(SlotClass.CORRECTING_COLLISION),
        E=count(SlotClass.JAMMED),
        singles=count(SlotClass.SINGLE),
    )


def classify_trace(trace: ChannelTrace, n: int, a: float) -> SlotCounts:
    """Classify a recorded LESK run (requires a trace with ``u`` recorded)."""
    u = trace.u_array()
    if np.isnan(u).any():
        raise ConfigurationError(
            "trace has no recorded estimator values; run with record_trace=True"
        )
    classes = classify_slots(
        u, trace.observed_states_array(), trace.jammed_array(), n=n, a=a
    )
    return counts_from_classes(classes)


def verify_lemma_2_3(counts: SlotCounts, n: int, a: float) -> dict[str, bool]:
    """Check the deterministic Lemma 2.3 relations on observed counters.

    Returns a dict of named boolean verdicts; all should be true for any
    trace produced by a faithful LESK run.
    """
    u0 = math.log2(n)
    return {
        "partition": counts.check_partition(),
        "correcting_silences": counts.CS <= (counts.IC + counts.E) / a + 1e-9,
        "correcting_collisions": counts.CC <= counts.IS * a + u0 * a + 1e-9,
    }


def theorem_2_6_regular_floor(counts: SlotCounts, n: int, eps: float) -> dict[str, float]:
    """The Theorem 2.6 proof chain, evaluated on measured counters.

    From Lemma 2.3 the proof derives (equation (1) and onward, assuming
    ``E <= (1-eps) t`` and the Lemma 2.5 events)::

        R  >=  (5/16) eps t - a log2(n) - 1

    Returns the measured ``R``, the floor value, and whether the premises
    (jam fraction and the Chernoff envelopes on IS / IC) held for this
    trace -- the floor is only claimed when they do.
    """
    a = 8.0 / eps
    t = counts.t
    floor = (5.0 / 16.0) * eps * t - a * math.log2(max(n, 2)) - 1.0
    premises = (
        counts.E <= (1.0 - eps) * t + 1e-9
        and counts.IS <= 2.0 * t / (a * a) + 1e-9
        and counts.IC <= 2.0 * t / a + 1e-9
    )
    return {
        "R": float(counts.R),
        "floor": floor,
        "premises_hold": premises,
        "satisfied": (not premises) or counts.R >= floor - 1e-9,
    }

"""Channel-state probabilities and the Lemma 2.1 bounds.

When each of ``n`` stations transmits independently with probability
``p``::

    P[Null]      = (1 - p)^n
    P[Single]    = n p (1 - p)^(n-1)
    P[Collision] = 1 - P[Null] - P[Single]

Lemma 2.1 parameterizes ``p = 1/(x n)`` for ``x > 0``, ``n > 1`` and gives:

1. ``P[Null]      <= exp(-1/x)``
2. ``P[Collision] <= 1/x^2``
3. ``P[Single]    >= (1/x) exp(-1/x)``
4. ``P[Single]    >= 1/x - 1/x^2``

All functions accept scalars or NumPy arrays and are numerically careful
(``log1p`` throughout) so they remain exact for ``n`` up to 1e12.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "p_null",
    "p_single",
    "p_collision",
    "null_upper_bound",
    "collision_upper_bound",
    "single_lower_bound_exp",
    "single_lower_bound_poly",
    "regular_single_lower_bound",
    "single_probability_function",
    "lemma_2_2_silence_slack",
    "lemma_2_2_collision_slack",
]


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def p_null(n, p):
    """Exact ``P[Null] = (1-p)^n`` (vectorized, log1p-based)."""
    n = _as_array(n)
    p = _as_array(p)
    safe_p = np.clip(p, 0.0, 1.0 - 1e-15)
    with np.errstate(invalid="ignore"):
        body = np.exp(n * np.log1p(-safe_p))
    out = np.where(p >= 1.0, np.where(n > 0, 0.0, 1.0), body)
    out = np.where(p <= 0.0, 1.0, out)
    return out if out.ndim else float(out)


def p_single(n, p):
    """Exact ``P[Single] = n p (1-p)^(n-1)``."""
    n = _as_array(n)
    p = _as_array(p)
    safe_p = np.clip(p, 0.0, 1.0 - 1e-15)
    with np.errstate(invalid="ignore"):
        body = n * p * np.exp((n - 1) * np.log1p(-safe_p))
    out = np.where(p <= 0.0, 0.0, body)
    out = np.where(p >= 1.0, np.where(n == 1, 1.0, 0.0), out)
    return out if out.ndim else float(out)


def p_collision(n, p):
    """Exact ``P[Collision] = 1 - P[Null] - P[Single]`` (clamped at 0)."""
    out = 1.0 - _as_array(p_null(n, p)) - _as_array(p_single(n, p))
    out = np.maximum(out, 0.0)
    return out if out.ndim else float(out)


# -- Lemma 2.1 bounds, parameterized by x where p = 1/(x n) ------------------


def null_upper_bound(x):
    """Lemma 2.1(1): ``P[Null] <= exp(-1/x)`` for ``p = 1/(xn)``."""
    x = _as_array(x)
    out = np.exp(-1.0 / x)
    return out if out.ndim else float(out)


def collision_upper_bound(x):
    """Lemma 2.1(2): ``P[Collision] <= 1/x^2``."""
    x = _as_array(x)
    out = 1.0 / (x * x)
    return out if out.ndim else float(out)


def single_lower_bound_exp(x):
    """Lemma 2.1(3): ``P[Single] >= (1/x) exp(-1/x)``."""
    x = _as_array(x)
    out = np.exp(-1.0 / x) / x
    return out if out.ndim else float(out)


def single_lower_bound_poly(x):
    """Lemma 2.1(4): ``P[Single] >= 1/x - 1/x^2`` (may be negative, still
    a valid lower bound)."""
    x = _as_array(x)
    out = 1.0 / x - 1.0 / (x * x)
    return out if out.ndim else float(out)


def regular_single_lower_bound(a: float) -> float:
    """Lemma 2.4: in every *regular* slot (``u`` inside the band
    ``[u0 - log2(2 ln a), u0 + log2(sqrt a) + 1]``), ``P[Single] >= ln(a)/a^2``.

    Note the paper states the constant as ``C = ln a / a^2`` in the lemma
    and uses ``2 ln a / a^2`` inside the proof of Theorem 2.6; we adopt the
    weaker (safe) lemma form.
    """
    if a < 8.0:
        raise ValueError(f"Lemma 2.4 requires a >= 8, got {a}")
    return math.log(a) / (a * a)


def single_probability_function(n: int):
    """Return ``f(p) = n p (1-p)^(n-1)`` as a callable (used by tests to
    check the unimodality argument in the proof of Lemma 2.4)."""

    def f(p):
        return p_single(n, p)

    return f


def lemma_2_2_silence_slack(n: int, a: float) -> float:
    """Lemma 2.2(1): an irregular-silence slot (``u <= u0 - log2(2 ln a)``,
    i.e. ``p >= 2 ln(a)/n``) is ``Null`` with probability at most ``1/a^2``.

    ``P[Null]`` decreases in ``p``, so the worst case is at the threshold
    exactly; returns ``1/a^2 - P[Null at threshold]`` (>= 0 iff the lemma
    holds for this (n, a)).
    """
    if a < 1.0 or n < 1:
        raise ValueError(f"need a >= 1 and n >= 1, got a={a}, n={n}")
    p_threshold = min(1.0, 2.0 * math.log(a) / n)
    return 1.0 / (a * a) - p_null(n, p_threshold)


def lemma_2_2_collision_slack(n: int, a: float) -> float:
    """Lemma 2.2(2): an irregular-collision slot (``u >= u0 + log2(a)/2``,
    i.e. ``p <= 1/(n sqrt(a))``) is a ``Collision`` with probability at
    most ``1/a``.

    ``P[Collision]`` increases in ``p``; worst case at the threshold.
    Returns ``1/a - P[Collision at threshold]``.
    """
    if a < 1.0 or n < 1:
        raise ValueError(f"need a >= 1 and n >= 1, got a={a}, n={n}")
    p_threshold = min(1.0, 1.0 / (n * math.sqrt(a)))
    return 1.0 / a - p_collision(n, p_threshold)

"""Fact 1: the Chernoff bound used throughout Section 2.2.

For ``X ~ Bin(n, p)`` and ``0 <= delta < 3/2``::

    P[X > (delta + 1) n p] <= exp(-delta^2 n p / 3)

(Janson, Luczak, Rucinski, *Random Graphs*, Thm 2.1 eq. 2.5 with
``t = delta n p``.)
"""

from __future__ import annotations

import math

__all__ = ["binomial_upper_tail", "slots_for_regular_success"]


def binomial_upper_tail(n: int, p: float, delta: float) -> float:
    """The Fact 1 upper bound on ``P[X > (1 + delta) n p]``.

    Raises for ``delta`` outside ``[0, 3/2)`` where the inequality is not
    claimed.
    """
    if not (0.0 <= delta < 1.5):
        raise ValueError(f"Fact 1 requires 0 <= delta < 3/2, got {delta}")
    if n < 0 or not (0.0 <= p <= 1.0):
        raise ValueError(f"need n >= 0 and p in [0,1], got n={n}, p={p}")
    return math.exp(-delta * delta * n * p / 3.0)


def slots_for_regular_success(C: float, failure: float) -> float:
    """Number of independent trials with success probability ``C`` needed
    to fail with probability at most *failure*: ``ln(1/failure)/C``.

    Used in the proof of Theorem 2.6 ("it suffices to have at least
    ``ln(3 n^beta)/C`` regular slots").
    """
    if not (0.0 < C <= 1.0):
        raise ValueError(f"C must be in (0, 1], got {C}")
    if not (0.0 < failure < 1.0):
        raise ValueError(f"failure must be in (0, 1), got {failure}")
    return math.log(1.0 / failure) / C


def lemma_2_5_holds(t: float, a: float, n: int, beta: float = 1.0) -> bool:
    """Lemma 2.5's arithmetic: for ``t > 3 a^2 log(3 n^beta)`` the Fact 1
    tail (delta = 1) of ``Bin(t, 1/a^2)`` is at most ``1/(3 n^beta)``.

    Returns whether the implication's conclusion holds at these values
    (vacuously true below the threshold).
    """
    if a <= 0 or t < 0 or n < 2:
        raise ValueError(f"need a > 0, t >= 0, n >= 2; got {a}, {t}, {n}")
    threshold = 3.0 * a * a * math.log(3.0 * n**beta)
    if t <= threshold:
        return True
    tail = binomial_upper_tail(int(t), 1.0 / (a * a), 1.0)
    return tail <= 1.0 / (3.0 * n**beta) + 1e-12

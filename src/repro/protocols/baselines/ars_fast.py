"""Vectorized simulator for the ARS MAC protocol [3].

The ARS protocol is *not* uniform (each node's ``p_v`` depends on its own
past transmit decisions), so the shared-state fast engine does not apply.
It is, however, perfectly vectorizable: per-node state is four scalars
(``p_v``, ``T_v``, ``c_v``, last-idle age) updated by branch-free NumPy
expressions, giving O(n) work per slot with NumPy constants -- one to two
orders of magnitude faster than the per-station object engine, and
distributionally identical (cross-validated in
``tests/protocols/baselines/test_ars_fast.py``).

Semantics simulated: strong-CD leader election (the run ends at the first
successful ``Single``; its transmitter is the leader), matching how
experiment T7 compares against LESK.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.protocols.baselines.ars_mac import P_MAX
from repro.rng import RngLike, make_rng
from repro.types import ChannelState
from repro.sim.metrics import EnergyStats, RunResult

__all__ = ["simulate_ars_fast"]


def simulate_ars_fast(
    n: int,
    gamma: float,
    adversary: Adversary,
    max_slots: int,
    seed: RngLike = None,
    p_start: float = P_MAX,
    record_trace: bool = False,
) -> RunResult:
    """Run the [3] MAC election over *n* nodes with learning rate *gamma*.

    Mirrors :class:`~repro.protocols.baselines.ars_mac.ARSMACStation`
    slot-for-slot; see that module for the protocol rules.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if gamma <= 0.0:
        raise ConfigurationError(f"gamma must be > 0, got {gamma}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    rng = make_rng(seed)
    adversary.reset(seed=rng.spawn(1)[0])
    trace = ChannelTrace()
    energy = EnergyStats()

    p = np.full(n, float(p_start))
    T_v = np.ones(n, dtype=np.int64)
    c_v = np.ones(n, dtype=np.int64)
    # Local slot index of the last sensed idle; -2**62 means "never".
    last_idle = np.full(n, -(2**62), dtype=np.int64)
    grow = 1.0 + gamma

    elected = False
    leader: int | None = None
    slots_run = 0
    timed_out = True

    for slot in range(max_slots):
        view = AdversaryView(
            slot=slot,
            n=n,
            trace=trace,
            budget=adversary.budget,
            transmit_probability=float(p.mean()),
        )
        jammed = adversary.decide(view)

        tx = rng.random(n) < p
        k = int(tx.sum())
        energy.transmissions += k
        energy.listening += n - k
        outcome = resolve_slot(slot, k, jammed)
        trace.append(
            transmitters=k,
            jammed=jammed,
            true_state=outcome.true_state,
            observed_state=outcome.observed_state,
        )
        slots_run = slot + 1

        if outcome.successful_single:
            elected = True
            leader = int(np.flatnonzero(tx)[0])
            timed_out = False
            break

        listen = ~tx
        if outcome.observed_state is ChannelState.NULL:
            # Listeners sense idle: p up (capped), idle timestamp refreshed.
            p[listen] = np.minimum(p[listen] * grow, P_MAX)
            last_idle[listen] = slot
        # (A jammed or collided slot triggers no direct update; an observed
        # Single cannot reach here in election mode -- a jammed true Single
        # is observed as a Collision.)

        # Counter logic, every node every slot.
        c_v += 1
        over = c_v > T_v
        if over.any():
            no_recent_idle = over & (slot - last_idle >= T_v)
            c_v[over] = 1
            if no_recent_idle.any():
                p[no_recent_idle] /= grow
                T_v[no_recent_idle] += 2

    return RunResult(
        n=n,
        slots=slots_run,
        elected=elected,
        leader=leader,
        first_single_slot=trace.first_single_slot,
        all_terminated=elected,
        leaders_count=1 if elected else 0,
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        trace=trace if record_trace else None,
        timed_out=timed_out,
    )

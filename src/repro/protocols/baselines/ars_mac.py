"""The Awerbuch--Richa--Scheideler jamming-resistant MAC protocol [3].

Reimplementation of the MAC protocol of Awerbuch, Richa and Scheideler
("A jamming-resistant MAC protocol for single-hop wireless networks",
PODC 2008; journal version with Schmid and Zhang, ACM Trans. Algorithms
2014 -- reference [3] of the paper).  Leader election is one of its
applications and the benchmark our paper compares against: [3] proves an
``O(log^4 n)`` bound (for constant eps), improved by LESK to ``O(log n)``,
and ``O(T log T)`` for very large ``T``, improved to ``O(T log log T)``.

Protocol state per node ``v``: probability ``p_v <= p_max = 1/24``,
threshold ``T_v``, counter ``c_v``, and the time of the last *idle* slot
it sensed.  Each slot ``v`` transmits with probability ``p_v``; if it did
not transmit it senses the channel:

* idle (``Null``):    ``p_v <- min((1+gamma) p_v, p_max)``
* success (``Single``): ``p_v <- p_v / (1+gamma)``; ``T_v <- max(T_v-1, 1)``

Then (every node, every slot): ``c_v <- c_v + 1``; if ``c_v > T_v``:
``c_v <- 1`` and if ``v`` sensed no idle slot during the last ``T_v``
slots, ``p_v <- p_v / (1+gamma)`` and ``T_v <- T_v + 2``.

The learning rate ``gamma = O(1 / (log T + log log n))`` is a *global*
parameter the stations must know -- the dependence our paper's protocols
eliminate (Section 1.3).

Unlike the paper's protocols this one is **not uniform** (``p_v`` depends
on ``v``'s own past transmit decisions), so it runs on the faithful
per-station engine.  For leader election we use the strong-CD equivalence
(Section 1.3): the first successful ``Single`` elects its transmitter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol
from repro.types import Action, PerceivedState, SlotFeedback

__all__ = ["ARSMACStation", "ars_gamma", "P_MAX"]

#: The cap on per-node transmission probability used in [3].
P_MAX = 1.0 / 24.0


def ars_gamma(n: int, T: int, scale: float = 1.0) -> float:
    """The global learning rate ``gamma = scale / (log2 T + log2 log2 n)``.

    [3] requires ``gamma = O(1/(log T + log log n))``; *scale* tunes the
    hidden constant.  This is exactly the global knowledge the paper's
    protocols do away with.
    """
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    loglog_n = math.log2(max(2.0, math.log2(max(n, 2))))
    log_T = math.log2(max(2, T))
    return scale / (log_T + loglog_n)


class ARSMACStation(StationProtocol):
    """Per-station implementation of the [3] MAC protocol.

    Parameters
    ----------
    gamma:
        Global learning rate (see :func:`ars_gamma`).
    p_start:
        Initial transmission probability (defaults to ``p_max``).
    terminate_on_single:
        If true (default) the station runs the *leader election*
        application: the first successful ``Single`` ends its protocol.
        If false it runs the plain MAC forever (used by the throughput
        experiment), applying [3]'s success update
        ``p_v <- p_v/(1+gamma)``, ``T_v <- max(T_v - 1, 1)``.
    """

    def __init__(
        self,
        gamma: float,
        p_start: float = P_MAX,
        terminate_on_single: bool = True,
    ) -> None:
        if gamma <= 0.0:
            raise ConfigurationError(f"gamma must be > 0, got {gamma}")
        if not (0.0 < p_start <= P_MAX):
            raise ConfigurationError(
                f"p_start must be in (0, {P_MAX:.4f}], got {p_start}"
            )
        self.gamma = float(gamma)
        self.p_start = float(p_start)
        self.terminate_on_single = terminate_on_single
        self._rng: np.random.Generator | None = None
        self.station_id: int | None = None
        self.p = self.p_start
        self.T_v = 1
        self.c_v = 1
        self._slots_seen = 0
        self._last_idle: int | None = None  # local slot index of last sensed Null
        self._transmitted = False
        self._done = False
        self._is_leader: bool | None = None

    # -- StationProtocol -----------------------------------------------------

    def reset(self, station_id: int, rng: np.random.Generator) -> None:
        self.station_id = station_id
        self._rng = rng
        self.p = self.p_start
        self.T_v = 1
        self.c_v = 1
        self._slots_seen = 0
        self._last_idle = None
        self._transmitted = False
        self._done = False
        self._is_leader = None

    def begin_slot(self, slot: int) -> Action:
        if self._rng is None:
            raise ConfigurationError("begin_slot before reset")
        if self._done:
            return Action.LISTEN
        self._transmitted = self._rng.random() < self.p
        return Action.TRANSMIT if self._transmitted else Action.LISTEN

    def end_slot(self, slot: int, feedback: SlotFeedback) -> None:
        if self._done:
            return
        local = self._slots_seen
        self._slots_seen += 1

        if feedback.transmitted:
            # Strong-CD election application: a successful transmission is
            # heard by its own sender, electing it.
            if feedback.perceived is PerceivedState.SINGLE and self.terminate_on_single:
                self._done = True
                self._is_leader = True
                return
        else:
            if feedback.perceived is PerceivedState.NULL:
                self._last_idle = local
                self.p = min((1.0 + self.gamma) * self.p, P_MAX)
            elif feedback.perceived is PerceivedState.SINGLE:
                if self.terminate_on_single:
                    # Someone else won the election.
                    self._done = True
                    self._is_leader = False
                    return
                # Plain MAC: back off after another node's success.
                self.p /= 1.0 + self.gamma
                self.T_v = max(self.T_v - 1, 1)

        # Counter logic (every node, every slot).
        self.c_v += 1
        if self.c_v > self.T_v:
            self.c_v = 1
            no_recent_idle = (
                self._last_idle is None or local - self._last_idle >= self.T_v
            )
            if no_recent_idle:
                self.p /= 1.0 + self.gamma
                self.T_v += 2

    @property
    def done(self) -> bool:
        return self._done

    @property
    def is_leader(self) -> bool | None:
        return self._is_leader

    def transmit_probability_hint(self) -> float:
        return 0.0 if self._done else self.p

    def __repr__(self) -> str:
        return (
            f"ARSMACStation(gamma={self.gamma:.4f}, p={self.p:.3g}, "
            f"T_v={self.T_v}, c_v={self.c_v})"
        )

"""Baseline protocols the paper compares against or motivates.

* :mod:`repro.protocols.baselines.ars_mac` -- the Awerbuch--Richa--
  Scheideler robust MAC [3], the paper's main comparator (O(log^4 n)
  leader election vs. our O(log n)).
* :mod:`repro.protocols.baselines.willard` -- Willard-style
  O(log log n)-expected selection resolution (related work [25]); fast
  but not jamming-resistant.
* :mod:`repro.protocols.baselines.nakano_olariu` -- uniform sweep
  election in O(log n) w.h.p. with CD, and the O(log^2 n) no-CD schedule
  (related work [18, 19, 21]); oblivious schedules, not jamming-resistant.
* :mod:`repro.protocols.baselines.symmetric_walk` -- the Section 2.1
  strawman: LESK with symmetric +-1 updates, whose estimate the adversary
  can push to infinity.
"""

from repro.protocols.baselines.ars_fast import simulate_ars_fast
from repro.protocols.baselines.geometric_energy import GeometricLevelStation
from repro.protocols.baselines.geometric_fast import simulate_geometric_fast
from repro.protocols.baselines.ars_mac import ARSMACStation, ars_gamma
from repro.protocols.baselines.nakano_olariu import NoCDSweepPolicy, UniformSweepPolicy
from repro.protocols.baselines.symmetric_walk import SymmetricWalkPolicy
from repro.protocols.baselines.willard import WillardPolicy

__all__ = [
    "ARSMACStation",
    "ars_gamma",
    "simulate_ars_fast",
    "GeometricLevelStation",
    "simulate_geometric_fast",
    "WillardPolicy",
    "UniformSweepPolicy",
    "NoCDSweepPolicy",
    "SymmetricWalkPolicy",
]

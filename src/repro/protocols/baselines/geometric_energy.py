"""Energy-efficient leader election via geometric levels (sleep-capable).

The paper explicitly skips energy analysis ("we expect ... similar to
[3]", Section 1.3) and cites the authors' own energy-efficient election
line of work [13] (Kardas-Klonowski-Pajak, ICPP 2013).  This baseline is a
simplified protocol in that spirit -- the classic geometric-level
tournament -- implemented with real radio sleeping so the energy frontier
can be *measured* (experiment A6):

* Each station privately draws a level ``L ~ Geometric(1/2)``
  (``P[L = k] = 2^-k``); the maximum level across ``n`` stations
  concentrates near ``log2 n`` and is *unique* with constant probability.
* Time is organized in rounds.  A round with level guess ``G`` has ``G``
  sweep slots (testing levels ``G, G-1, ..., 1``) followed by one
  confirmation slot:

  - in sweep slot for level ``j``, exactly the stations with
    ``min(L, G) = j`` transmit; everyone else **sleeps**;
  - a station that hears/produces a clear ``Single`` during the sweep is
    the round's winner (strong-CD: the transmitter hears it itself);
  - in the confirmation slot every station wakes and listens while the
    winner (if any) transmits alone: a clear ``Single`` there ends the
    protocol for everyone.

* If the confirmation slot is not a ``Single`` (no unique maximum this
  round, or jamming), the guess doubles, fresh levels are drawn, and the
  next round begins.

Per-station energy is O(1) per round -- one transmission during the sweep
plus one listen at the confirmation -- times O(log log n + retries)
rounds, versus LESK's one *listen per slot* (Theta(log n) energy).  The
price is fragility: the confirmation slot's position is public, so a
jammer can deny it within budget and stall the protocol -- the
energy-vs-robustness trade-off quantified in experiment A6.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.protocols.base import StationProtocol
from repro.types import Action, PerceivedState, SlotFeedback

__all__ = ["GeometricLevelStation", "round_length", "confirmation_slots"]


def round_length(guess: int) -> int:
    """Slots in a round with level guess *guess*: the sweep plus one
    confirmation slot."""
    if guess < 1:
        raise ConfigurationError(f"guess must be >= 1, got {guess}")
    return guess + 1


def confirmation_slots(initial_guess: int, horizon: int) -> frozenset[int]:
    """Slot indices of every confirmation slot up to *horizon*.

    The round schedule is public and deterministic (guesses double), so an
    adversary can precompute exactly where the protocol is vulnerable --
    the structural weakness experiment A6 exploits.
    """
    if initial_guess < 1:
        raise ConfigurationError(f"initial_guess must be >= 1, got {initial_guess}")
    if horizon < 0:
        raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
    out = set()
    slot = 0
    guess = initial_guess
    while slot < horizon:
        slot += guess  # the sweep
        if slot < horizon:
            out.add(slot)  # the confirmation
        slot += 1
        guess *= 2
    return frozenset(out)


class GeometricLevelStation(StationProtocol):
    """Sleep-capable geometric-level tournament station (strong-CD).

    Parameters
    ----------
    initial_guess:
        Level guess of the first round (doubles each round).
    """

    def __init__(self, initial_guess: int = 2) -> None:
        if initial_guess < 1:
            raise ConfigurationError(
                f"initial_guess must be >= 1, got {initial_guess}"
            )
        self.initial_guess = int(initial_guess)
        self._rng: np.random.Generator | None = None
        self.station_id: int | None = None
        self._guess = self.initial_guess
        self._round_slot = 0  # position within the current round
        self._level = 1
        self._round_winner = False  # won a sweep Single this round
        self._done = False
        self._is_leader: bool | None = None
        self.rounds_played = 0

    # -- internals -------------------------------------------------------------

    def _draw_level(self) -> int:
        assert self._rng is not None
        # Geometric(1/2) over {1, 2, ...}: P[L = k] = 2^-k.
        return int(self._rng.geometric(0.5))

    def _begin_round(self) -> None:
        self._round_slot = 0
        self._level = self._draw_level()
        self._round_winner = False
        self.rounds_played += 1

    # -- StationProtocol ---------------------------------------------------------

    def reset(self, station_id: int, rng: np.random.Generator) -> None:
        self.station_id = station_id
        self._rng = rng
        self._guess = self.initial_guess
        self._done = False
        self._is_leader = None
        self.rounds_played = 0
        self._begin_round()

    def begin_slot(self, slot: int) -> Action:
        if self._rng is None:
            raise ConfigurationError("begin_slot before reset")
        if self._done:
            return Action.LISTEN
        j = self._sweep_level_of_slot()
        if j is not None:
            # Sweep slot for level j: transmit iff it is my slot, else sleep.
            if min(self._level, self._guess) == j:
                return Action.TRANSMIT
            return Action.SLEEP
        # Confirmation slot: the round winner announces; everyone listens.
        if self._round_winner:
            return Action.TRANSMIT
        return Action.LISTEN

    def _sweep_level_of_slot(self) -> int | None:
        """Level tested in the current round slot (None = confirmation)."""
        if self._round_slot < self._guess:
            return self._guess - self._round_slot  # G, G-1, ..., 1
        return None

    def end_slot(self, slot: int, feedback: SlotFeedback) -> None:
        if self._done:
            return
        in_sweep = self._sweep_level_of_slot() is not None
        self._round_slot += 1

        if in_sweep:
            # Strong-CD: a transmitter that hears its own Single won the sweep.
            if feedback.transmitted and feedback.perceived is PerceivedState.SINGLE:
                self._round_winner = True
            return

        # Confirmation slot.
        if feedback.transmitted:
            if feedback.perceived is PerceivedState.SINGLE:
                self._done = True
                self._is_leader = True
                return
        elif feedback.perceived is PerceivedState.SINGLE:
            self._done = True
            self._is_leader = False
            return
        # No confirmation: double the guess and redraw.
        self._guess *= 2
        self._begin_round()

    @property
    def done(self) -> bool:
        return self._done

    @property
    def is_leader(self) -> bool | None:
        return self._is_leader

    def __repr__(self) -> str:
        return (
            f"GeometricLevelStation(guess={self._guess}, level={self._level}, "
            f"round_slot={self._round_slot})"
        )

"""Willard-style selection resolution (expected O(log log n), strong-CD).

Follows the classic double-exponential-probe + binary-search scheme of
Willard (SIAM J. Comput. 1986, reference [25]):

1. **Probe phase**: try exponents ``u = 2^0, 2^1, 2^2, ...`` (transmission
   probability ``2**-u``) until the channel answers ``Null``.  A ``Null``
   at exponent ``2^i`` means ``log2 n`` is (w.c.p.) below ``2^i``; together
   with the preceding ``Collision`` at ``2^(i-1)`` this brackets
   ``log2 n`` in an interval of length ``2^(i-1)``.
2. **Binary-search phase**: bisect the bracket on channel feedback --
   ``Null`` means the exponent is too high, ``Collision`` too low -- until
   it collapses, then keep broadcasting at the final exponent (each such
   slot yields a ``Single`` with constant probability).

Expected ``O(log log n)`` slots without an adversary -- much faster than
LESK -- but a jammed slot *looks like a collision*, sending the binary
search to the wrong half: the protocol has no robustness whatsoever, which
is exactly the contrast the comparison experiment shows.
"""

from __future__ import annotations

from repro.protocols.base import UniformPolicy, probability_from_exponent
from repro.types import ChannelState

__all__ = ["WillardPolicy"]


class WillardPolicy(UniformPolicy):
    """Uniform-policy implementation of the probe + bisect scheme."""

    #: Settle slots before declaring the attempt failed and restarting.
    SETTLE_PATIENCE = 32

    def __init__(self) -> None:
        self._phase = "probe"
        self._probe_index = 0  # probing exponent 2**probe_index
        self._lo = 0.0  # binary-search bracket [lo, hi] on the exponent
        self._hi = 1.0
        self._u = 1.0  # current exponent
        self._settle_slots = 0
        self._restarts = 0
        self._completed = False

    # -- UniformPolicy ---------------------------------------------------------

    def transmit_probability(self, step: int) -> float:
        return probability_from_exponent(self._u)

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            self._completed = True
            return
        if self._phase == "probe":
            if state is ChannelState.NULL:
                # Bracket found: log2 n in [2**(i-1), 2**i] (approximately).
                self._hi = float(2**self._probe_index)
                self._lo = self._hi / 2.0 if self._probe_index > 0 else 0.0
                self._phase = "bisect"
                self._u = (self._lo + self._hi) / 2.0
            else:
                self._probe_index += 1
                self._u = float(2**self._probe_index)
            return
        if self._phase == "bisect":
            if state is ChannelState.NULL:
                self._hi = self._u
            else:  # COLLISION
                self._lo = self._u
            if self._hi - self._lo <= 1.0:
                self._phase = "settle"
                self._u = (self._lo + self._hi) / 2.0
            else:
                self._u = (self._lo + self._hi) / 2.0
            return
        # Settle: keep broadcasting at the settled exponent.  A failed
        # attempt (bracket misled by noise or jamming) is retried from
        # scratch, the standard boosting of Willard's constant-probability
        # guarantee.
        self._settle_slots += 1
        if self._settle_slots >= self.SETTLE_PATIENCE:
            self._phase = "probe"
            self._probe_index = 0
            self._u = 1.0
            self._settle_slots = 0
            self._restarts += 1

    @property
    def u(self) -> float:
        return self._u

    @property
    def completed(self) -> bool:
        return self._completed

    @property
    def phase(self) -> str:
        return self._phase

    def clone(self) -> "WillardPolicy":
        return WillardPolicy()

    def __repr__(self) -> str:
        return f"WillardPolicy(phase={self._phase}, u={self._u:.2f})"

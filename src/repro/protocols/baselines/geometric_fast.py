"""Vectorized simulator for the geometric-level tournament.

The tournament's randomness is all in the per-round level draws; within a
round the schedule is deterministic.  So one round simulates as:

1. draw ``levels ~ Geometric(1/2)`` for all n stations (vectorized) and
   histogram ``min(level, G)``;
2. sweep slot for level ``j`` has exactly ``hist[j]`` transmitters; a
   clear slot with ``hist[j] == 1`` makes that station a round winner;
3. the confirmation slot has ``#winners`` transmitters; a clear ``Single``
   there elects.

Per-round cost is O(G + n) with NumPy constants -- orders of magnitude
faster than the per-station engine, and distributionally identical
(cross-validated in ``tests/protocols/baselines/test_geometric_energy.py``).
Energy accounting matches the faithful engine: one transmission per
station per round plus one confirmation listen (winners transmit instead).
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, AdversaryView
from repro.channel.channel import resolve_slot
from repro.channel.trace import ChannelTrace
from repro.errors import ConfigurationError
from repro.rng import RngLike, make_rng
from repro.sim.metrics import EnergyStats, RunResult

__all__ = ["simulate_geometric_fast"]


def simulate_geometric_fast(
    n: int,
    adversary: Adversary,
    max_slots: int,
    seed: RngLike = None,
    initial_guess: int = 2,
    record_trace: bool = False,
) -> RunResult:
    """Run the geometric-level tournament election over *n* stations.

    Mirrors :class:`~repro.protocols.baselines.geometric_energy.GeometricLevelStation`
    slot-for-slot; see that module for the protocol.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if initial_guess < 1:
        raise ConfigurationError(f"initial_guess must be >= 1, got {initial_guess}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    rng = make_rng(seed)
    adversary.reset(seed=rng.spawn(1)[0])
    trace = ChannelTrace()
    energy = EnergyStats()

    guess = int(initial_guess)
    slot = 0
    elected = False
    timed_out = True

    def decide_jam() -> bool:
        view = AdversaryView(
            slot=slot, n=n, trace=trace, budget=adversary.budget
        )
        return adversary.decide(view)

    while slot < max_slots:
        levels = np.minimum(rng.geometric(0.5, size=n), guess)
        hist = np.bincount(levels, minlength=guess + 1)
        winners = 0
        # Sweep: levels guess, guess-1, ..., 1.
        for j in range(guess, 0, -1):
            if slot >= max_slots:
                break
            jammed = decide_jam()
            k = int(hist[j])
            outcome = resolve_slot(slot, k, jammed)
            trace.append(k, jammed, outcome.true_state, outcome.observed_state)
            energy.transmissions += k
            # Non-transmitters sleep during the sweep: no listening energy.
            if outcome.successful_single:
                winners += 1
            slot += 1
        if slot >= max_slots:
            break
        # Confirmation slot: winners transmit, everyone else listens.
        jammed = decide_jam()
        outcome = resolve_slot(slot, winners, jammed)
        trace.append(winners, jammed, outcome.true_state, outcome.observed_state)
        energy.transmissions += winners
        energy.listening += n - winners
        slot += 1
        if outcome.successful_single:
            elected = True
            timed_out = False
            break
        guess *= 2

    leader = int(rng.integers(n)) if elected else None
    return RunResult(
        n=n,
        slots=slot,
        elected=elected,
        leader=leader,
        first_single_slot=trace.first_single_slot,
        all_terminated=elected,
        leaders_count=1 if elected else 0,
        jams=adversary.budget.jams_granted,
        jam_denied=adversary.budget.denied_requests,
        energy=energy,
        trace=trace if record_trace else None,
        timed_out=timed_out,
    )

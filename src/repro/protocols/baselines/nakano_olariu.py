"""Nakano--Olariu-style uniform election schedules (references [18, 19, 21]).

Two oblivious, uniform schedules that elect w.h.p. *without* an adversary:

* :class:`UniformSweepPolicy` (with collision detection): sawtooth sweeps
  of the exponent ``u = 0, 1, ..., K`` with the ceiling ``K`` doubling
  after each sweep.  Once ``K >= log2 n`` every sweep passes through the
  window ``u ~ log2 n`` where a ``Single`` occurs with constant
  probability; summing the geometric sweep lengths gives ``O(log n)``
  slots w.h.p. -- the classic uniform doubling-election bound [21].

* :class:`NoCDSweepPolicy` (no collision detection): the same sweep but
  with each exponent repeated ``repeat(K)`` times, giving the
  ``O(log^2 n)`` w.h.p. bound of [19].  (In no-CD a listener only learns
  ``Single`` vs ``no-Single``, so the schedule cannot adapt at all.)

Both schedules ignore channel feedback entirely (they only stop on a
``Single``), which makes them trivially *correct* under jamming but not
*robust*: an adversary that jams the few dangerous slots of every sweep
delays election indefinitely within its budget -- the contrast experiment
T8 quantifies this.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy, probability_from_exponent
from repro.types import ChannelState

__all__ = ["UniformSweepPolicy", "NoCDSweepPolicy"]


class UniformSweepPolicy(UniformPolicy):
    """Sawtooth exponent sweep with doubling ceiling (CD model)."""

    def __init__(self, initial_ceiling: int = 1) -> None:
        if initial_ceiling < 1:
            raise ConfigurationError(
                f"initial_ceiling must be >= 1, got {initial_ceiling}"
            )
        self._ceiling = int(initial_ceiling)
        self._u = 0
        self._completed = False

    def transmit_probability(self, step: int) -> float:
        return probability_from_exponent(float(self._u))

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            self._completed = True
            return
        self._u += 1
        if self._u > self._ceiling:
            self._u = 0
            self._ceiling *= 2

    @property
    def u(self) -> float:
        return float(self._u)

    @property
    def ceiling(self) -> int:
        return self._ceiling

    @property
    def completed(self) -> bool:
        return self._completed

    def clone(self) -> "UniformSweepPolicy":
        return UniformSweepPolicy()

    def __repr__(self) -> str:
        return f"UniformSweepPolicy(u={self._u}, ceiling={self._ceiling})"


class NoCDSweepPolicy(UniformPolicy):
    """No-CD sweep: each exponent of sweep ``K`` is repeated ``K`` times.

    The repetition boosts the per-window success probability enough that
    the protocol does not need Null/Collision feedback, matching the
    ``O(log^2 n)`` schedule of [19].  Drive it with
    ``halt_on_single=True``; intermediate states are ignored.
    """

    def __init__(self, initial_ceiling: int = 2) -> None:
        if initial_ceiling < 1:
            raise ConfigurationError(
                f"initial_ceiling must be >= 1, got {initial_ceiling}"
            )
        self._ceiling = int(initial_ceiling)
        self._u = 0
        self._repeat_left = self._ceiling
        self._completed = False

    def _repeats(self) -> int:
        return self._ceiling

    def transmit_probability(self, step: int) -> float:
        return probability_from_exponent(float(self._u))

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            self._completed = True
            return
        self._repeat_left -= 1
        if self._repeat_left > 0:
            return
        self._u += 1
        if self._u > self._ceiling:
            self._u = 0
            self._ceiling *= 2
        self._repeat_left = self._repeats()

    @property
    def u(self) -> float:
        return float(self._u)

    @property
    def ceiling(self) -> int:
        return self._ceiling

    @property
    def completed(self) -> bool:
        return self._completed

    def clone(self) -> "NoCDSweepPolicy":
        return NoCDSweepPolicy()

    def __repr__(self) -> str:
        return (
            f"NoCDSweepPolicy(u={self._u}, ceiling={self._ceiling}, "
            f"repeat_left={self._repeat_left})"
        )

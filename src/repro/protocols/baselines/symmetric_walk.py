"""The Section 2.1 strawman: a symmetric estimator walk.

"...we cannot use symmetric changes or the adversary could force the
estimate u to diverge to infinity."  This policy is LESK with the
collision update changed from ``+1/a`` to ``+delta`` (default +1,
symmetric with the ``-1`` silence update).  Against an adversary with
``eps < 1/2`` -- more jammed slots than clear ones -- the estimate is
pushed up faster than genuine silences can pull it down, the transmission
probability collapses, and no leader is ever elected.  Experiment F1 plots
the divergence next to LESK's bounded walk.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy, probability_from_exponent
from repro.types import ChannelState

__all__ = ["SymmetricWalkPolicy"]


class SymmetricWalkPolicy(UniformPolicy):
    """LESK with a symmetric (non-robust) collision update."""

    def __init__(self, collision_delta: float = 1.0) -> None:
        if collision_delta <= 0.0:
            raise ConfigurationError(
                f"collision_delta must be > 0, got {collision_delta}"
            )
        self.collision_delta = float(collision_delta)
        self._u = 0.0
        self._completed = False

    def transmit_probability(self, step: int) -> float:
        return probability_from_exponent(self._u)

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.NULL:
            self._u = max(self._u - 1.0, 0.0)
        elif state is ChannelState.COLLISION:
            self._u += self.collision_delta
        else:
            self._completed = True

    @property
    def u(self) -> float:
        return self._u

    @property
    def completed(self) -> bool:
        return self._completed

    def clone(self) -> "SymmetricWalkPolicy":
        return SymmetricWalkPolicy(self.collision_delta)

    def __repr__(self) -> str:
        return f"SymmetricWalkPolicy(u={self._u:.3f})"

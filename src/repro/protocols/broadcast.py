"""The ``Broadcast(u)`` primitive (Functions 1 and 3 of the paper).

``Broadcast(u)`` = "transmit with probability ``2**-u``; return the status
of the channel".  In the simulation the primitive is distributed across the
engine (which resolves the channel) and the station adapters (which apply
the per-mode return conventions); this module captures the *return value*
semantics in one reusable function, used by the adapters, documentation
and tests:

* strong-CD (Function 1): the caller receives the observed channel state,
  whether or not it transmitted.
* weak-CD (Function 3): a transmitting caller receives ``Collision`` (its
  own conservative assumption); a listening caller receives the observed
  state.

>>> from repro.types import CDMode, ChannelState
>>> transmit_probability(3.0)
0.125
>>> broadcast_feedback(True, ChannelState.SINGLE, CDMode.STRONG).name
'SINGLE'
>>> broadcast_feedback(True, ChannelState.SINGLE, CDMode.WEAK).name
'COLLISION'
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.protocols.base import probability_from_exponent
from repro.types import CDMode, ChannelState

__all__ = ["broadcast_feedback", "transmit_probability"]


def transmit_probability(u: float) -> float:
    """The ``Broadcast(u)`` transmission probability ``2**-u`` (clamped)."""
    return probability_from_exponent(u)


def broadcast_feedback(
    transmitted: bool, observed: ChannelState, mode: CDMode
) -> ChannelState:
    """Return value of ``Broadcast`` for one caller.

    Parameters
    ----------
    transmitted:
        Whether this caller transmitted in the slot.
    observed:
        Observed state of the channel (``COLLISION`` if jammed).
    mode:
        ``STRONG`` or ``WEAK`` collision detection.
    """
    if mode is CDMode.STRONG:
        return observed
    if mode is CDMode.WEAK:
        if transmitted:
            return ChannelState.COLLISION
        return observed
    raise ConfigurationError("Broadcast is defined for strong-CD and weak-CD only")

"""Vectorized uniform policies: one shared-state column per replication.

The batched engine (:mod:`repro.sim.batched`) advances ``R`` independent
replications per NumPy step, so it needs the :class:`UniformPolicy`
contract lifted to ``(R,)`` arrays: array-valued ``transmit_probabilities``
and a masked ``observe_batch`` that only updates the still-active columns.

Each column evolves by exactly the scalar policy's update rule, driven by
its own observation sequence -- the per-column state trajectory (hence the
election-time distribution) is identical to running the scalar policy
under :func:`repro.sim.fast.simulate_uniform_fast`, which is what the
KS cross-validation in ``tests/sim/test_batched.py`` asserts.

Implemented policies:

* :class:`VectorLESKPolicy` -- Algorithm 1 (the paper's headline protocol);
* :class:`VectorSweepPolicy` -- the Nakano--Olariu geometric
  doubling-sweep baseline (``repro.protocols.baselines.nakano_olariu``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.protocols.lesk import lesk_parameter_a
from repro.types import ChannelState

__all__ = ["VectorUniformPolicy", "VectorLESKPolicy", "VectorSweepPolicy"]

#: Largest exponent for which ``2**-u`` is a positive double (matches
#: ``repro.protocols.base.probability_from_exponent``).
_MAX_EXPONENT = 1074.0

_NULL = int(ChannelState.NULL)
_SINGLE = int(ChannelState.SINGLE)
_COLLISION = int(ChannelState.COLLISION)


def probabilities_from_exponents(u: np.ndarray) -> np.ndarray:
    """Vectorized ``probability_from_exponent``: ``2**-u`` elementwise,
    clamped to exactly 1.0 for ``u <= 0`` and exactly 0.0 for huge ``u``."""
    p = np.exp2(-np.clip(u, 0.0, _MAX_EXPONENT))
    p[u >= _MAX_EXPONENT] = 0.0
    return p


class VectorUniformPolicy(abc.ABC):
    """Shared-state uniform protocol over ``reps`` independent columns.

    The batched engine calls, for each global step ``s = 0, 1, 2, ...``:

    1. ``p = policy.transmit_probabilities(s)`` -- shape ``(reps,)``;
    2. (channel resolves per column) ;
    3. ``policy.observe_batch(s, states, active)`` with the per-column
       observed :class:`~repro.types.ChannelState` codes and the mask of
       columns that should actually advance (columns retired by a
       successful ``Single`` are excluded, mirroring the scalar engines
       not calling ``observe`` for the halting slot).
    """

    def __init__(self, reps: int) -> None:
        if reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {reps}")
        self.reps = int(reps)

    @abc.abstractmethod
    def transmit_probabilities(self, step: int) -> np.ndarray:
        """Common per-station transmission probability, per column."""

    @abc.abstractmethod
    def observe_batch(
        self, step: int, states: np.ndarray, active: np.ndarray
    ) -> None:
        """Advance the columns selected by ``active`` given their observed
        channel-state codes (``states``, int array of shape ``(reps,)``)."""

    @property
    def u(self) -> np.ndarray:
        """Per-column estimator values (NaN where not applicable)."""
        return np.full(self.reps, np.nan)

    @property
    def completed(self) -> np.ndarray:
        """Mask of columns that finished of their own accord."""
        return np.zeros(self.reps, dtype=bool)


class VectorLESKPolicy(VectorUniformPolicy):
    """Batched Algorithm 1: the LESK estimator walk, one column per rep.

    Update rule per column (identical to
    :class:`~repro.protocols.lesk.LESKPolicy`): ``Null`` steps ``u`` down
    by 1 (floored at 0), ``Collision`` steps it up by ``1/a`` with
    ``a = 8/eps``, ``Single`` marks the column completed.
    """

    def __init__(
        self,
        eps: float,
        reps: int,
        initial_u: float = 0.0,
        floor_at_zero: bool = True,
    ) -> None:
        super().__init__(reps)
        if initial_u < 0.0:
            raise ConfigurationError(f"initial_u must be >= 0, got {initial_u}")
        self.eps = float(eps)
        self.a = lesk_parameter_a(eps)
        self.initial_u = float(initial_u)
        self.floor_at_zero = floor_at_zero
        self._u = np.full(self.reps, self.initial_u)
        self._completed = np.zeros(self.reps, dtype=bool)
        self.nulls_seen = np.zeros(self.reps, dtype=np.int64)
        self.collisions_seen = np.zeros(self.reps, dtype=np.int64)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return probabilities_from_exponents(self._u)

    def observe_batch(self, step, states, active):
        nulls = active & (states == _NULL)
        collisions = active & (states == _COLLISION)
        singles = active & (states == _SINGLE)
        self.nulls_seen += nulls
        self.collisions_seen += collisions
        self._u[nulls] -= 1.0
        if self.floor_at_zero:
            np.maximum(self._u, 0.0, out=self._u, where=nulls)
        self._u[collisions] += 1.0 / self.a
        self._completed |= singles

    @property
    def u(self) -> np.ndarray:
        return self._u

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def __repr__(self) -> str:
        return f"VectorLESKPolicy(eps={self.eps}, reps={self.reps})"


class VectorSweepPolicy(VectorUniformPolicy):
    """Batched geometric doubling-sweep baseline (Nakano--Olariu, CD model).

    Per column (identical to
    :class:`~repro.protocols.baselines.nakano_olariu.UniformSweepPolicy`):
    sawtooth sweeps ``u = 0, 1, ..., K`` with the ceiling ``K`` doubling
    after each sweep; a ``Single`` marks the column completed.
    """

    def __init__(self, reps: int, initial_ceiling: int = 1) -> None:
        super().__init__(reps)
        if initial_ceiling < 1:
            raise ConfigurationError(
                f"initial_ceiling must be >= 1, got {initial_ceiling}"
            )
        self._u = np.zeros(self.reps, dtype=np.int64)
        self._ceiling = np.full(self.reps, int(initial_ceiling), dtype=np.int64)
        self._completed = np.zeros(self.reps, dtype=bool)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return probabilities_from_exponents(self._u.astype(np.float64))

    def observe_batch(self, step, states, active):
        singles = active & (states == _SINGLE)
        self._completed |= singles
        advance = active & ~singles
        self._u[advance] += 1
        wrap = advance & (self._u > self._ceiling)
        self._u[wrap] = 0
        self._ceiling[wrap] *= 2

    @property
    def u(self) -> np.ndarray:
        return self._u.astype(np.float64)

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def __repr__(self) -> str:
        return f"VectorSweepPolicy(reps={self.reps})"

"""Vectorized uniform policies: one shared-state column per replication.

The batched engine (:mod:`repro.sim.batched`) advances ``R`` independent
replications per NumPy step, so it needs the :class:`UniformPolicy`
contract lifted to ``(R,)`` arrays: array-valued ``transmit_probabilities``
and a masked ``observe_batch`` that only updates the still-active columns.

Each column evolves by exactly the scalar policy's update rule, driven by
its own observation sequence -- the per-column state trajectory (hence the
election-time distribution) is identical to running the scalar policy
under :func:`repro.sim.fast.simulate_uniform_fast`, which is what the
KS cross-validation in ``tests/sim/test_batched.py`` asserts.

Implemented policies:

* :class:`VectorLESKPolicy` -- Algorithm 1 (the paper's headline protocol);
* :class:`VectorSweepPolicy` -- the Nakano--Olariu geometric
  doubling-sweep baseline (``repro.protocols.baselines.nakano_olariu``);
* :class:`VectorEstimationPolicy` -- ``Estimation(L)`` (Function 2);
* :class:`VectorLESUPolicy` -- Algorithm 2 (estimation phase + diagonal
  LESK sub-run schedule), the weak-CD/unknown-eps protocol;
* :class:`VectorNoCDSweepPolicy` -- the no-CD repeated sweep baseline.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.protocols.lesk import lesk_parameter_a
from repro.protocols.lesu import DEFAULT_C, SubRun, lesu_schedule
from repro.types import ChannelState

__all__ = [
    "VectorUniformPolicy",
    "VectorLESKPolicy",
    "VectorSweepPolicy",
    "VectorEstimationPolicy",
    "VectorLESUPolicy",
    "VectorNoCDSweepPolicy",
]

#: Largest exponent for which ``2**-u`` is a positive double (matches
#: ``repro.protocols.base.probability_from_exponent``).
_MAX_EXPONENT = 1074.0

_NULL = int(ChannelState.NULL)
_SINGLE = int(ChannelState.SINGLE)
_COLLISION = int(ChannelState.COLLISION)


def probabilities_from_exponents(u: np.ndarray) -> np.ndarray:
    """Vectorized ``probability_from_exponent``: ``2**-u`` elementwise,
    clamped to exactly 1.0 for ``u <= 0`` and exactly 0.0 for huge ``u``.

    Bit-identical to the former ``exp2(-clip(u, 0, MAX))`` formulation
    (``maximum`` realizes the lower clamp; values above ``_MAX_EXPONENT``
    are overwritten by the mask either way), one clip pass cheaper -- the
    engines' own in-place ``[0, 1]`` clip is the only clip left per slot.
    """
    p = np.maximum(u, 0.0)
    np.negative(p, out=p)
    np.exp2(p, out=p)
    p[u >= _MAX_EXPONENT] = 0.0
    return p


class VectorUniformPolicy(abc.ABC):
    """Shared-state uniform protocol over ``reps`` independent columns.

    The batched engine calls, for each global step ``s = 0, 1, 2, ...``:

    1. ``p = policy.transmit_probabilities(s)`` -- shape ``(reps,)``;
    2. (channel resolves per column) ;
    3. ``policy.observe_batch(s, states, active)`` with the per-column
       observed :class:`~repro.types.ChannelState` codes and the mask of
       columns that should actually advance (columns retired by a
       successful ``Single`` are excluded, mirroring the scalar engines
       not calling ``observe`` for the halting slot).
    """

    def __init__(self, reps: int) -> None:
        if reps < 1:
            raise ConfigurationError(f"reps must be >= 1, got {reps}")
        self.reps = int(reps)

    @abc.abstractmethod
    def transmit_probabilities(self, step: int) -> np.ndarray:
        """Common per-station transmission probability, per column."""

    @abc.abstractmethod
    def observe_batch(
        self, step: int, states: np.ndarray, active: np.ndarray
    ) -> None:
        """Advance the columns selected by ``active`` given their observed
        channel-state codes (``states``, int array of shape ``(reps,)``)."""

    @property
    def u(self) -> np.ndarray:
        """Per-column estimator values (NaN where not applicable)."""
        return np.full(self.reps, np.nan)

    @property
    def completed(self) -> np.ndarray:
        """Mask of columns that finished of their own accord."""
        return np.zeros(self.reps, dtype=bool)

    @property
    def policy_results(self) -> np.ndarray | None:
        """Per-column policy result values (int64, ``-1`` = none), or
        ``None`` for policies without a result notion -- the batched
        counterpart of the scalar ``UniformPolicy.result``."""
        return None

    def compact(self, keep: np.ndarray) -> None:
        """Drop every column not selected by ``keep`` (sorted index array).

        Used by the batched engine's dead-rep compaction: retired columns
        are packed out of the live batch, and since every update rule is
        elementwise, slicing the per-column state arrays preserves the
        surviving columns' trajectories exactly.  Policies whose state is
        fully covered override this; the base raises so a policy with
        unknown extra state cannot be silently mis-compacted.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support dead-rep compaction"
        )


class VectorLESKPolicy(VectorUniformPolicy):
    """Batched Algorithm 1: the LESK estimator walk, one column per rep.

    Update rule per column (identical to
    :class:`~repro.protocols.lesk.LESKPolicy`): ``Null`` steps ``u`` down
    by 1 (floored at 0), ``Collision`` steps it up by ``1/a`` with
    ``a = 8/eps``, ``Single`` marks the column completed.
    """

    def __init__(
        self,
        eps: float,
        reps: int,
        initial_u: float = 0.0,
        floor_at_zero: bool = True,
    ) -> None:
        super().__init__(reps)
        if initial_u < 0.0:
            raise ConfigurationError(f"initial_u must be >= 0, got {initial_u}")
        self.eps = float(eps)
        self.a = lesk_parameter_a(eps)
        self.initial_u = float(initial_u)
        self.floor_at_zero = floor_at_zero
        self._u = np.full(self.reps, self.initial_u)
        self._completed = np.zeros(self.reps, dtype=bool)
        self.nulls_seen = np.zeros(self.reps, dtype=np.int64)
        self.collisions_seen = np.zeros(self.reps, dtype=np.int64)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return probabilities_from_exponents(self._u)

    def observe_batch(self, step, states, active):
        nulls = active & (states == _NULL)
        collisions = active & (states == _COLLISION)
        singles = active & (states == _SINGLE)
        self.nulls_seen += nulls
        self.collisions_seen += collisions
        np.subtract(self._u, 1.0, out=self._u, where=nulls)
        if self.floor_at_zero:
            np.maximum(self._u, 0.0, out=self._u, where=nulls)
        np.add(self._u, 1.0 / self.a, out=self._u, where=collisions)
        self._completed |= singles

    @property
    def u(self) -> np.ndarray:
        return self._u

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def compact(self, keep):
        self.reps = int(np.asarray(keep).size)
        self._u = self._u[keep]
        self._completed = self._completed[keep]
        self.nulls_seen = self.nulls_seen[keep]
        self.collisions_seen = self.collisions_seen[keep]

    def __repr__(self) -> str:
        return f"VectorLESKPolicy(eps={self.eps}, reps={self.reps})"


class VectorSweepPolicy(VectorUniformPolicy):
    """Batched geometric doubling-sweep baseline (Nakano--Olariu, CD model).

    Per column (identical to
    :class:`~repro.protocols.baselines.nakano_olariu.UniformSweepPolicy`):
    sawtooth sweeps ``u = 0, 1, ..., K`` with the ceiling ``K`` doubling
    after each sweep; a ``Single`` marks the column completed.
    """

    def __init__(self, reps: int, initial_ceiling: int = 1) -> None:
        super().__init__(reps)
        if initial_ceiling < 1:
            raise ConfigurationError(
                f"initial_ceiling must be >= 1, got {initial_ceiling}"
            )
        self._u = np.zeros(self.reps, dtype=np.int64)
        self._ceiling = np.full(self.reps, int(initial_ceiling), dtype=np.int64)
        self._completed = np.zeros(self.reps, dtype=bool)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return probabilities_from_exponents(self._u.astype(np.float64))

    def observe_batch(self, step, states, active):
        singles = active & (states == _SINGLE)
        self._completed |= singles
        advance = active & ~singles
        self._u[advance] += 1
        wrap = advance & (self._u > self._ceiling)
        self._u[wrap] = 0
        self._ceiling[wrap] *= 2

    @property
    def u(self) -> np.ndarray:
        return self._u.astype(np.float64)

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def compact(self, keep):
        self.reps = int(np.asarray(keep).size)
        self._u = self._u[keep]
        self._ceiling = self._ceiling[keep]
        self._completed = self._completed[keep]

    def __repr__(self) -> str:
        return f"VectorSweepPolicy(reps={self.reps})"


class VectorNoCDSweepPolicy(VectorUniformPolicy):
    """Batched no-CD sweep baseline: each exponent of sweep ``K`` repeated
    ``K`` times, per column identical to
    :class:`~repro.protocols.baselines.nakano_olariu.NoCDSweepPolicy`."""

    def __init__(self, reps: int, initial_ceiling: int = 2) -> None:
        super().__init__(reps)
        if initial_ceiling < 1:
            raise ConfigurationError(
                f"initial_ceiling must be >= 1, got {initial_ceiling}"
            )
        self._u = np.zeros(self.reps, dtype=np.int64)
        self._ceiling = np.full(self.reps, int(initial_ceiling), dtype=np.int64)
        self._repeat_left = self._ceiling.copy()
        self._completed = np.zeros(self.reps, dtype=bool)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return probabilities_from_exponents(self._u.astype(np.float64))

    def observe_batch(self, step, states, active):
        singles = active & (states == _SINGLE)
        self._completed |= singles
        advance = active & ~singles
        self._repeat_left[advance] -= 1
        move = advance & (self._repeat_left <= 0)
        self._u[move] += 1
        wrap = move & (self._u > self._ceiling)
        self._u[wrap] = 0
        self._ceiling[wrap] *= 2
        # Scalar semantics: the repeat count is refilled from the ceiling
        # *after* a potential doubling.
        self._repeat_left[move] = self._ceiling[move]

    @property
    def u(self) -> np.ndarray:
        return self._u.astype(np.float64)

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def compact(self, keep):
        self.reps = int(np.asarray(keep).size)
        self._u = self._u[keep]
        self._ceiling = self._ceiling[keep]
        self._repeat_left = self._repeat_left[keep]
        self._completed = self._completed[keep]

    def __repr__(self) -> str:
        return f"VectorNoCDSweepPolicy(reps={self.reps})"


class VectorEstimationPolicy(VectorUniformPolicy):
    """Batched ``Estimation(L)`` (Function 2), one column per replication.

    Per column identical to
    :class:`~repro.protocols.estimation.EstimationPolicy`: round ``r`` has
    ``2**r`` slots at probability ``2**-(2**r)``; a round with at least
    ``L`` nulls (or hitting ``max_round``) sets the column's result.
    :attr:`policy_results` exposes the per-column returned round indices.
    """

    def __init__(self, reps: int, L: int = 2, max_round: int = 60) -> None:
        super().__init__(reps)
        if L < 1:
            raise ConfigurationError(f"L must be >= 1, got {L}")
        if max_round < 1:
            raise ConfigurationError(f"max_round must be >= 1, got {max_round}")
        self.L = int(L)
        self.max_round = int(max_round)
        self._round = np.ones(self.reps, dtype=np.int64)
        self._left = np.full(self.reps, 2, dtype=np.int64)
        self._nulls = np.zeros(self.reps, dtype=np.int64)
        self._result = np.full(self.reps, -1, dtype=np.int64)
        # Round r's probability 2**-(2**r) only depends on r: precompute the
        # whole table once per batch instead of exponentiating every slot.
        self._prob_table = _estimation_probability_table(self.max_round)

    def transmit_probabilities(self, step: int) -> np.ndarray:
        return self._prob_table[self._round]

    def observe_batch(self, step, states, active):
        act = active & (self._result < 0)
        self._nulls[act & (states == _NULL)] += 1
        self._left[act] -= 1
        expired = act & (self._left == 0)
        if not expired.any():
            return
        done = expired & (
            (self._nulls >= self.L) | (self._round >= self.max_round)
        )
        self._result[done] = self._round[done]
        cont = expired & ~done
        self._round[cont] += 1
        self._left[cont] = 2 ** self._round[cont]
        self._nulls[cont] = 0

    @property
    def current_round(self) -> np.ndarray:
        return self._round

    @property
    def completed(self) -> np.ndarray:
        return self._result >= 0

    @property
    def policy_results(self) -> np.ndarray:
        return self._result

    def compact(self, keep):
        self.reps = int(np.asarray(keep).size)
        self._round = self._round[keep]
        self._left = self._left[keep]
        self._nulls = self._nulls[keep]
        self._result = self._result[keep]

    def __repr__(self) -> str:
        return f"VectorEstimationPolicy(L={self.L}, reps={self.reps})"


@lru_cache(maxsize=None)
def _estimation_probability_table(max_round: int) -> np.ndarray:
    """``table[r] = 2**-(2**r)`` for rounds ``0..max_round`` (read-only)."""
    exponents = np.minimum(2.0 ** np.arange(max_round + 1), _MAX_EXPONENT + 1.0)
    table = probabilities_from_exponents(exponents)
    table.setflags(write=False)
    return table


class _LESUScheduleTable:
    """Flat, lazily extended view of one ``lesu_schedule(t0)`` stream.

    Columns of a batch (and rep-blocks of a sharded sweep) that produced
    the same estimation result share the same ``t0 = c * 2**(1 + round)``,
    so the sub-run sequence is memoised per ``(c, round)`` key via
    :func:`_lesu_table` instead of re-walking the generator per column.
    """

    def __init__(self, t0: float) -> None:
        self._it = lesu_schedule(t0)
        self._subruns: list[SubRun] = []

    def get(self, index: int) -> SubRun:
        while len(self._subruns) <= index:
            self._subruns.append(next(self._it))
        return self._subruns[index]


@lru_cache(maxsize=None)
def _lesu_table(c: float, round_index: int) -> _LESUScheduleTable:
    return _LESUScheduleTable(c * 2.0 ** (1 + round_index))


#: Sub-run durations are clamped here when stored (int64 safety): diagonals
#: deep enough to overflow are beyond any reachable ``max_slots`` anyway.
_DURATION_CAP = np.int64(2) ** 62


class VectorLESUPolicy(VectorUniformPolicy):
    """Batched Algorithm 2 (LESU): estimation phase + diagonal LESK
    sub-run schedule, one column per replication.

    Per column identical to :class:`~repro.protocols.lesu.LESUPolicy`:
    runs ``Estimation(L)`` until a round with ``L`` nulls fixes
    ``t0 = c * 2**(1 + round)``, then sweeps LESK sub-runs
    ``LESK(2**(-j/3))`` for ``ceil(3 * 2**i * t0 / j)`` slots along the
    diagonal schedule.  Each sub-run starts a fresh LESK walk (``u = 0``);
    a ``Single`` completes the column.  During estimation the estimator
    exposure ``u`` is ``2**round`` -- the same value the scalar policy
    shows an :class:`~repro.adversary.adaptive.EstimatorAttacker`.
    """

    def __init__(
        self,
        reps: int,
        c: float = DEFAULT_C,
        L: int = 2,
        max_round: int = 60,
    ) -> None:
        super().__init__(reps)
        if c <= 0:
            raise ConfigurationError(f"c must be > 0, got {c}")
        self.c = float(c)
        self.L = int(L)
        self.max_round = int(max_round)
        # Estimation-phase state (mirrors VectorEstimationPolicy).
        self._in_est = np.ones(self.reps, dtype=bool)
        self._est_round = np.ones(self.reps, dtype=np.int64)
        self._est_left = np.full(self.reps, 2, dtype=np.int64)
        self._est_nulls = np.zeros(self.reps, dtype=np.int64)
        self._est_result = np.full(self.reps, -1, dtype=np.int64)
        self._est_prob_table = _estimation_probability_table(self.max_round)
        # Election-phase state: current sub-run index, its remaining slots
        # and LESK parameter, and the in-sub-run estimator walk.
        self._sub_index = np.full(self.reps, -1, dtype=np.int64)
        self._steps_left = np.zeros(self.reps, dtype=np.int64)
        self._a = np.ones(self.reps)
        self._u = np.zeros(self.reps)
        self._completed = np.zeros(self.reps, dtype=bool)
        self.subruns_started = np.zeros(self.reps, dtype=np.int64)
        # Cached ``self._in_est.any()``: long runs spend almost all slots
        # with every column past estimation, where the flag elides the
        # whole estimation branch (and its mask algebra) per slot.
        self._any_in_est = True

    def _start_subruns(self, cols: np.ndarray) -> None:
        """Enter each selected column's sub-run ``self._sub_index[col]``."""
        for col in np.flatnonzero(cols):
            table = _lesu_table(self.c, int(self._est_result[col]))
            sub = table.get(int(self._sub_index[col]))
            self._a[col] = lesk_parameter_a(sub.eps)
            self._steps_left[col] = min(sub.duration, int(_DURATION_CAP))
            self._u[col] = 0.0  # fresh LESK walk per sub-run
            self.subruns_started[col] += 1

    def transmit_probabilities(self, step: int) -> np.ndarray:
        if not self._any_in_est:
            # Post-estimation fast path (the common regime for long runs):
            # identical values, without the table gather and the blend.
            return probabilities_from_exponents(self._u)
        return np.where(
            self._in_est,
            self._est_prob_table[self._est_round],
            probabilities_from_exponents(self._u),
        )

    def observe_batch(self, step, states, active):
        singles = active & (states == _SINGLE)
        self._completed |= singles
        # singles is a subset of active, so xor is the set difference.
        act = active ^ singles
        if not self._any_in_est:
            self._observe_election(act, states)
            return
        # Scalar semantics: a column still estimating at entry only runs
        # the estimation update this slot -- the sub-run machinery starts
        # on the *next* observation, and the halting Single never advances
        # either phase.
        in_est = act & self._in_est
        # in_est is a subset of act, so xor is the set difference.
        election = act ^ in_est

        if in_est.any():
            self._est_nulls[in_est & (states == _NULL)] += 1
            self._est_left[in_est] -= 1
            expired = in_est & (self._est_left == 0)
            if expired.any():
                done = expired & (
                    (self._est_nulls >= self.L)
                    | (self._est_round >= self.max_round)
                )
                self._est_result[done] = self._est_round[done]
                cont = expired & ~done
                self._est_round[cont] += 1
                self._est_left[cont] = 2 ** self._est_round[cont]
                self._est_nulls[cont] = 0
                if done.any():
                    self._in_est[done] = False
                    self._sub_index[done] = 0
                    self._start_subruns(done)
                    self._any_in_est = bool(self._in_est.any())

        if election.any():
            self._observe_election(election, states)

    def _observe_election(self, election: np.ndarray, states: np.ndarray) -> None:
        """Advance the LESK sub-run walk for the selected columns."""
        nulls = election & (states == _NULL)
        collisions = election & (states == _COLLISION)
        np.subtract(self._u, 1.0, out=self._u, where=nulls)
        np.maximum(self._u, 0.0, out=self._u, where=nulls)
        np.add(self._u, 1.0 / self._a, out=self._u, where=collisions)
        np.subtract(self._steps_left, 1, out=self._steps_left, where=election)
        over = election & (self._steps_left <= 0)
        if over.any():
            self._sub_index[over] += 1
            self._start_subruns(over)

    @property
    def u(self) -> np.ndarray:
        return np.where(self._in_est, 2.0**self._est_round, self._u)

    @property
    def in_estimation(self) -> np.ndarray:
        return self._in_est

    @property
    def completed(self) -> np.ndarray:
        return self._completed

    def compact(self, keep):
        self.reps = int(np.asarray(keep).size)
        self._in_est = self._in_est[keep]
        self._est_round = self._est_round[keep]
        self._est_left = self._est_left[keep]
        self._est_nulls = self._est_nulls[keep]
        self._est_result = self._est_result[keep]
        self._sub_index = self._sub_index[keep]
        self._steps_left = self._steps_left[keep]
        self._a = self._a[keep]
        self._u = self._u[keep]
        self._completed = self._completed[keep]
        self.subruns_started = self.subruns_started[keep]
        if self._any_in_est:
            self._any_in_est = bool(self._in_est.any())

    def __repr__(self) -> str:
        return f"VectorLESUPolicy(c={self.c}, reps={self.reps})"

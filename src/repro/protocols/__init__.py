"""Leader-election protocols: the paper's algorithms and the baselines.

The paper's algorithms are *uniform* (Section 1.1, [21]): in every slot all
stations transmit with one common, history-determined probability.  They
are implemented as :class:`~repro.protocols.base.UniformPolicy` objects --
a shared-state description consumed directly by the fast vectorized engine
and wrapped per-station (via
:class:`~repro.protocols.base.UniformStationAdapter`) by the faithful
engine.  The weak-CD Notification wrapper is a genuinely per-station state
machine (:mod:`repro.protocols.notification`).
"""

from repro.protocols.base import (
    StationProtocol,
    UniformPolicy,
    UniformStationAdapter,
)
from repro.protocols.broadcast import broadcast_feedback
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.intervals import (
    interval_bounds,
    interval_of_slot,
    slots_of_interval,
)
from repro.protocols.lesk import LESKPolicy
from repro.protocols.lesu import LESUPolicy, lesu_schedule
from repro.protocols.notification import NotificationStation, Phase
from repro.protocols.vector import (
    VectorLESKPolicy,
    VectorSweepPolicy,
    VectorUniformPolicy,
)

__all__ = [
    "UniformPolicy",
    "StationProtocol",
    "UniformStationAdapter",
    "broadcast_feedback",
    "LESKPolicy",
    "EstimationPolicy",
    "VectorUniformPolicy",
    "VectorLESKPolicy",
    "VectorSweepPolicy",
    "LESUPolicy",
    "lesu_schedule",
    "NotificationStation",
    "Phase",
    "interval_of_slot",
    "interval_bounds",
    "slots_of_interval",
]

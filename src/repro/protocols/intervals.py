"""The Section 3 interval partition ``C_1, C_2, C_3``.

For ``i >= 1`` and ``j in {1, 2, 3}``::

    C^i_1 = {3*2^i - 3, ..., 4*2^i - 4}
    C^i_2 = {4*2^i - 3, ..., 5*2^i - 4}
    C^i_3 = {5*2^i - 3, ..., 6*2^i - 4}

Each interval has exactly ``2**i`` slots; the nine-interval sequence
``C^1_1 C^1_2 C^1_3 C^2_1 ...`` tiles the timeline from slot 3 onward
(slots 0..2 belong to no interval).  ``C_j`` is the union over ``i`` of
``C^i_j``.  For ``i >= log2 T`` an interval is longer than ``T`` slots, so a
(T, 1-eps)-bounded adversary cannot jam it entirely -- the property the
Notification wrapper relies on.

>>> list(slots_of_interval(1, 1)), list(slots_of_interval(1, 3))
([3, 4], [7, 8])
>>> iv = interval_of_slot(10)
>>> (iv.i, iv.j, iv.offset, iv.size)
(2, 1, 1, 4)
>>> interval_of_slot(2) is None
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "IntervalId",
    "interval_of_slot",
    "interval_bounds",
    "slots_of_interval",
    "first_slot_of_interval",
    "fixed_partition",
]


@dataclass(frozen=True, slots=True)
class IntervalId:
    """Identifier of one interval ``C^i_j`` plus the position of a slot in it."""

    i: int
    j: int
    offset: int  # 0-based position of the slot within the interval
    #: Interval length in slots (2**i for the paper's partition).
    length: int = 0

    @property
    def size(self) -> int:
        """Interval length (falls back to the paper's ``2**i`` when the
        constructing partition did not record an explicit length)."""
        return self.length if self.length else 2**self.i


def interval_bounds(i: int, j: int) -> tuple[int, int]:
    """Half-open slot range ``[start, end)`` of ``C^i_j``."""
    if i < 1:
        raise ConfigurationError(f"interval index i must be >= 1, got {i}")
    if j not in (1, 2, 3):
        raise ConfigurationError(f"interval class j must be 1, 2 or 3, got {j}")
    size = 2**i
    start = (2 + j) * size - 3
    return start, start + size


def first_slot_of_interval(i: int, j: int) -> int:
    """First slot of ``C^i_j``."""
    return interval_bounds(i, j)[0]


def slots_of_interval(i: int, j: int) -> range:
    """All slots of ``C^i_j``."""
    start, end = interval_bounds(i, j)
    return range(start, end)


def interval_of_slot(slot: int) -> IntervalId | None:
    """Locate *slot* in the partition; ``None`` for slots 0..2.

    O(1): the block of index ``i`` spans ``[3*(2**i - 1), 3*(2**(i+1) - 1))``
    = ``[3*2^i - 3, 6*2^i - 3)`` and contains the three intervals of size
    ``2**i`` in order ``j = 1, 2, 3``.
    """
    if slot < 0:
        raise ConfigurationError(f"slot must be >= 0, got {slot}")
    if slot < 3:
        return None
    # Find i with 3*2^i - 3 <= slot < 6*2^i - 3, i.e. 2^i <= (slot + 3)/3 < 2^(i+1).
    i = ((slot + 3) // 3).bit_length() - 1
    block_start = 3 * (2**i) - 3
    within = slot - block_start
    size = 2**i
    j = within // size + 1
    offset = within % size
    return IntervalId(i=i, j=int(j), offset=int(offset), length=size)


def fixed_partition(length: int):
    """A *non-growing* alternative partition: every interval ``C^i_j`` has
    the constant size *length*, tiling the timeline from slot 0.

    Exists for ablation A9: the paper's partition doubles so that some
    interval eventually exceeds any (unknown) ``T``; a fixed partition
    loses exactly that property -- an adversary that can afford ``length``
    consecutive jams denies every ``C^i_3`` forever.  Returns a callable
    with the same signature as :func:`interval_of_slot`.
    """
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")

    def locate(slot: int) -> IntervalId | None:
        if slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {slot}")
        interval_index = slot // length
        return IntervalId(
            i=interval_index // 3 + 1,
            j=interval_index % 3 + 1,
            offset=slot % length,
            length=length,
        )

    return locate

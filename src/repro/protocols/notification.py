"""Notification (Function 4): weak-CD leader election from any
first-``Single`` algorithm, with constant-factor overhead (Lemma 3.1).

In weak-CD the station that transmits a successful ``Single`` does not hear
it -- everyone else learns a leader exists, but the leader itself does not.
Notification fixes this with the interval partition ``C_1, C_2, C_3`` of
:mod:`repro.protocols.intervals`:

1. All stations run algorithm ``A`` in the slots of ``C_1`` (restarting it
   with fresh randomness at the start of every interval ``C^i_1``), until a
   ``Single`` is heard in ``C_1`` (or ``C_2``).  The listeners now know a
   leader candidate ``l`` exists (``leader <- false``); ``l`` itself keeps
   running ``A`` in ``C_1``, oblivious.
2. The listeners run a fresh execution of ``A`` in the slots of ``C_2``.
   When its ``Single`` (by some station ``s``) is heard:
   * ``l`` -- the only station that missed the first ``Single`` and hence
     the only one with ``leader`` still undefined -- learns it is the
     leader and starts transmitting in **every** ``C_3`` slot;
   * every other listener starts transmitting in every ``C_1`` slot
     (keeping ``C_1`` busy so ``l`` does not quit early) and waits.
3. The adversary cannot jam an entire interval ``C^i_3`` of size
   ``2**i >= T``, so ``l``'s solo transmissions produce a ``Single`` in
   ``C_3``: all waiting stations terminate as non-leaders (and stop
   transmitting in ``C_1``).
4. ``C_1`` finally falls silent; the first ``Null`` that ``l`` hears in
   ``C_1`` tells it everyone knows, and it terminates as the leader.

Lemma 3.1: if ``A`` obtains its first ``Single`` in time ``t(n)`` with
probability ``>= 1 - 1/(3n)`` against any (T, 1-eps)-bounded adversary,
Notification elects a leader in time ``O(t(n))`` (at most ``8 * t(n)``)
with probability ``>= 1 - 1/n`` against the same adversary.
"""

from __future__ import annotations

import enum
import math
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.protocols.base import StationProtocol, UniformPolicy
from repro.protocols.intervals import IntervalId, interval_of_slot
from repro.types import Action, CDMode, ChannelState, PerceivedState, SlotFeedback

__all__ = ["Phase", "NotificationStation"]


class Phase(enum.Enum):
    """Per-station phase of the Notification state machine."""

    RUN_C1 = "run-c1"
    RUN_C2 = "run-c2"
    NOTIFY_LEADER = "notify-leader"  # transmit in C3 until a Null in C1
    NOTIFY_NONLEADER = "notify-nonleader"  # transmit in C1 until a Single in C3
    DONE = "done"


class NotificationStation(StationProtocol):
    """Weak-CD station running Notification around algorithm ``A``.

    Parameters
    ----------
    algorithm_factory:
        Zero-argument callable producing a **fresh**
        :class:`~repro.protocols.base.UniformPolicy` instance of ``A``;
        called at the start of every interval (the paper reverts ``A`` to
        its initial state with fresh random choices at each restart).
    partition:
        Slot locator mapping a slot to its interval (default: the paper's
        doubling partition).  Ablation A9 swaps in
        :func:`~repro.protocols.intervals.fixed_partition` to show why the
        doubling matters.
    """

    def __init__(
        self,
        algorithm_factory: Callable[[], UniformPolicy],
        partition: Callable[[int], IntervalId | None] = interval_of_slot,
    ) -> None:
        self.algorithm_factory = algorithm_factory
        self.partition = partition
        self._rng: np.random.Generator | None = None
        self.station_id: int | None = None
        self.phase = Phase.RUN_C1
        self._leader: bool | None = None
        self._alg: UniformPolicy | None = None
        self._alg_key: tuple[int, int] | None = None  # (j, i) of the running interval
        self._alg_step = 0
        self._alg_active_this_slot = False
        self._pending = False
        self._transmitted = False

    # -- StationProtocol -----------------------------------------------------

    def reset(self, station_id: int, rng: np.random.Generator) -> None:
        self.station_id = station_id
        self._rng = rng
        self.phase = Phase.RUN_C1
        self._leader = None
        self._alg = None
        self._alg_key = None
        self._alg_step = 0
        self._alg_active_this_slot = False
        self._pending = False
        self._transmitted = False

    def _run_set(self) -> int | None:
        """Which interval class (j) this station currently runs ``A`` in."""
        if self.phase is Phase.RUN_C1:
            return 1
        if self.phase is Phase.RUN_C2:
            return 2
        return None

    def begin_slot(self, slot: int) -> Action:
        if self._rng is None:
            raise ProtocolError("begin_slot before reset")
        if self._pending:
            raise ProtocolError("begin_slot called twice without end_slot")
        self._pending = True
        self._alg_active_this_slot = False
        self._transmitted = False
        if self.phase is Phase.DONE:
            return Action.LISTEN
        iv = self.partition(slot)
        if iv is None:
            return Action.LISTEN

        run_set = self._run_set()
        if run_set is not None and iv.j == run_set:
            # Execute one step of A; restart at each new interval C^i_j.
            key = (iv.j, iv.i)
            if self._alg is None or self._alg_key != key:
                self._alg = self.algorithm_factory()
                self._alg_key = key
                self._alg_step = 0
            self._alg_active_this_slot = True
            p = self._alg.transmit_probability(self._alg_step)
            if p > 0.0 and self._rng.random() < p:
                self._transmitted = True
                return Action.TRANSMIT
            return Action.LISTEN
        if self.phase is Phase.NOTIFY_NONLEADER and iv.j == 1:
            self._transmitted = True
            return Action.TRANSMIT
        if self.phase is Phase.NOTIFY_LEADER and iv.j == 3:
            self._transmitted = True
            return Action.TRANSMIT
        return Action.LISTEN

    def end_slot(self, slot: int, feedback: SlotFeedback) -> None:
        if not self._pending:
            raise ProtocolError("end_slot without begin_slot")
        self._pending = False
        if self.phase is Phase.DONE:
            return
        iv = self.partition(slot)
        if iv is None:
            return

        # 1. Feed A its Broadcast(.) return value (weak-CD convention:
        #    transmitters assume Collision).
        if self._alg_active_this_slot and self._alg is not None:
            if feedback.transmitted:
                state_for_alg: ChannelState | None = ChannelState.COLLISION
            elif feedback.perceived is PerceivedState.SINGLE:
                state_for_alg = None  # A's goal reached; transitions below take over
            elif feedback.perceived is PerceivedState.UNKNOWN:
                state_for_alg = None  # fault-erased slot: no information for A
            else:
                state_for_alg = ChannelState(int(feedback.perceived))
            if state_for_alg is not None:
                self._alg.observe(self._alg_step, state_for_alg)
                self._alg_step += 1

        # 2. Phase transitions on heard events (listeners only: a weak-CD
        #    transmitter perceives UNKNOWN and never transitions here).
        if feedback.transmitted:
            return
        perceived = feedback.perceived
        if perceived is PerceivedState.SINGLE:
            self._on_single(iv)
        elif perceived is PerceivedState.NULL:
            if iv.j == 1 and self.phase is Phase.NOTIFY_LEADER:
                # Everyone else terminated and stopped transmitting in C1:
                # the leader's notification is acknowledged.
                self.phase = Phase.DONE

    def _on_single(self, iv: IntervalId) -> None:
        if iv.j == 1:
            if self.phase is Phase.RUN_C1:
                # First Single: a leader candidate exists; this station is
                # not it.  Move to the C2 execution of A.
                self._leader = False
                self.phase = Phase.RUN_C2
                self._drop_alg()
        elif iv.j == 2:
            if self._leader is None:
                # Only the C1 transmitter missed the first Single, so only
                # it still has leader undefined: it is the leader.
                self._leader = True
                self.phase = Phase.NOTIFY_LEADER
                self._drop_alg()
            elif self._leader is False and self.phase is Phase.RUN_C2:
                self.phase = Phase.NOTIFY_NONLEADER
                self._drop_alg()
        elif iv.j == 3:
            # The leader announced itself: everyone still waiting finishes.
            if self.phase in (Phase.RUN_C1, Phase.RUN_C2, Phase.NOTIFY_NONLEADER):
                if self._leader is None:
                    self._leader = False
                self.phase = Phase.DONE
                self._drop_alg()

    def _drop_alg(self) -> None:
        self._alg = None
        self._alg_key = None
        self._alg_step = 0

    # -- status ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.phase is Phase.DONE

    @property
    def is_leader(self) -> bool | None:
        return self._leader

    def transmit_probability_hint(self) -> float:
        # Only meaningful while the station is executing A; notification
        # phases transmit deterministically.
        if self._alg is not None:
            return self._alg.transmit_probability(self._alg_step)
        if self.phase in (Phase.NOTIFY_LEADER, Phase.NOTIFY_NONLEADER):
            return 1.0
        if self.phase is Phase.DONE:
            return 0.0
        return math.nan

    def u_hint(self) -> float:
        return self._alg.u if self._alg is not None else math.nan

    def __repr__(self) -> str:
        return (
            f"NotificationStation(phase={self.phase.value}, leader={self._leader})"
        )

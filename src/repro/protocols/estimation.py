"""``Estimation(L)`` (Function 2): jam-resistant scale estimation.

Rounds ``r = 1, 2, 3, ...``; round ``r`` consists of ``2**r`` slots, in
each of which every station calls ``Broadcast(2**r)`` (transmission
probability ``2**-(2**r)``).  If at least ``L`` slots of the round were
``Null``, the function returns ``r``.

Lemma 2.8 (for ``L = 2``, ``n >= 115``): with probability at least
``1 - 2/n**2`` the call either produces a ``Single`` (electing a leader on
the spot) or returns ``i`` with
``log log n - 1 <= i <= max{log log n, log T} + 1``, within
``O(max{log n, T})`` slots.  The intuition: while ``2**-(2**r) >= 1/sqrt(n)``
silences are exponentially unlikely, and once a round is long enough
(``2**r >= 2T``) the adversary cannot jam it entirely while the
transmission probability ``<= 1/n**2`` makes non-jammed slots Null w.h.p.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy, probability_from_exponent
from repro.types import ChannelState

__all__ = ["EstimationPolicy"]


class EstimationPolicy(UniformPolicy):
    """Uniform-policy implementation of Function 2.

    :attr:`completed` becomes true when a round accumulates ``L`` nulls;
    :attr:`result` is then the returned round index.  ``max_round`` guards
    against unbounded growth when driven without a slot limit.
    """

    def __init__(self, L: int = 2, max_round: int = 60) -> None:
        if L < 1:
            raise ConfigurationError(f"L must be >= 1, got {L}")
        if max_round < 1:
            raise ConfigurationError(f"max_round must be >= 1, got {max_round}")
        self.L = int(L)
        self.max_round = int(max_round)
        self._round = 1
        self._slots_left_in_round = 2  # round r has 2**r slots
        self._nulls_in_round = 0
        self._result: int | None = None
        self.total_steps = 0

    # -- UniformPolicy ---------------------------------------------------------

    def transmit_probability(self, step: int) -> float:
        # Round r uses Broadcast(2**r): probability 2**-(2**r).
        return probability_from_exponent(float(2 ** self._round))

    def observe(self, step: int, state: ChannelState) -> None:
        if self._result is not None:
            return
        self.total_steps += 1
        if state is ChannelState.NULL:
            self._nulls_in_round += 1
        self._slots_left_in_round -= 1
        if self._slots_left_in_round == 0:
            if self._nulls_in_round >= self.L:
                self._result = self._round
                return
            if self._round >= self.max_round:
                # Pathological (adversary would need to jam 2**60 slots in a
                # row); report the cap rather than loop forever.
                self._result = self._round
                return
            self._round += 1
            self._slots_left_in_round = 2 ** self._round
            self._nulls_in_round = 0

    @property
    def completed(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> int | None:
        return self._result

    @property
    def current_round(self) -> int:
        return self._round

    def clone(self) -> "EstimationPolicy":
        return EstimationPolicy(L=self.L, max_round=self.max_round)

    def __repr__(self) -> str:
        return (
            f"EstimationPolicy(L={self.L}, round={self._round}, "
            f"result={self._result})"
        )

"""LESU -- Leader Election in Strong-CD with Unknown eps (Algorithm 2).

LESU first runs ``Estimation(2)`` to obtain ``t0 = c * 2**(1 + round)``,
a w.h.p. estimate of ``Theta(max{log n, T})`` (Lemma 2.8).  It then sweeps
candidate adversary strengths ``eps_j = 2**(-j/3)`` in a diagonal schedule:

    for i = 1, 2, 3, ...:
        for j = 1, ..., i:
            run LESK(eps_j) for  t_i * i / j  slots,

where ``t_i = t0 / (eps_i**3 * log2(1/eps_i)) = 3 * 2**i * t0 / i``, so the
sub-run of LESK(eps_j) in diagonal ``i`` lasts ``3 * 2**i * t0 / j`` slots.
Once the diagonal reaches ``i*``, ``j*`` such that ``eps_{j*} in [eps/2, eps]``
and the allotted time covers ``c * max{T, log n/(eps**3 log(1/eps))}``, that
sub-run elects a leader w.h.p. (Theorem 2.6); the doubling structure makes
the total time of all earlier sub-runs a constant factor of the successful
one -- giving the Theorem 2.9 bounds.

The constant ``c`` is asymptotic in the paper ("let c be such that...");
``DEFAULT_C`` is our calibrated choice, exposed as a parameter and
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy
from repro.protocols.estimation import EstimationPolicy
from repro.protocols.lesk import LESKPolicy
from repro.types import ChannelState

__all__ = ["LESUPolicy", "lesu_schedule", "SubRun", "DEFAULT_C"]

#: Calibrated value of the Theorem 2.6 constant ``c`` used in
#: ``t0 = c * 2**(1 + Estimation(2))``.  The paper's proof constants are
#: loose; empirically (EXPERIMENTS.md, experiment T5) c = 2 already gives
#: the stated success probability across the tested grid.
DEFAULT_C = 2.0


@dataclass(frozen=True, slots=True)
class SubRun:
    """One LESK sub-run of the LESU schedule."""

    i: int
    j: int
    eps: float
    duration: int


def lesu_schedule(t0: float, max_i: int = 64) -> Iterator[SubRun]:
    """Yield the diagonal schedule of Algorithm 2 for a given ``t0``.

    ``duration = ceil(3 * 2**i * t0 / j)`` slots of ``LESK(2**(-j/3))``.
    """
    if t0 <= 0:
        raise ConfigurationError(f"t0 must be > 0, got {t0}")
    for i in range(1, max_i + 1):
        for j in range(1, i + 1):
            eps_j = 2.0 ** (-j / 3.0)
            duration = math.ceil(3.0 * (2.0**i) * t0 / j)
            yield SubRun(i=i, j=j, eps=eps_j, duration=duration)


class LESUPolicy(UniformPolicy):
    """Uniform-policy implementation of Algorithm 2.

    Runs forever (until the engine detects a successful ``Single``); the
    engine's ``max_slots`` is the only external stop.  Exposes the current
    phase and sub-run for traces and tests.

    Parameters
    ----------
    c:
        The Theorem 2.6 constant used in ``t0 = c * 2**(1 + Estimation(2))``.
    L:
        Null threshold of the estimation phase (the paper uses 2).
    """

    def __init__(self, c: float = DEFAULT_C, L: int = 2) -> None:
        if c <= 0:
            raise ConfigurationError(f"c must be > 0, got {c}")
        self.c = float(c)
        self.estimation = EstimationPolicy(L=L)
        self._phase = "estimation"
        self._t0: float | None = None
        self._schedule: Iterator[SubRun] | None = None
        self._current: SubRun | None = None
        self._lesk: LESKPolicy | None = None
        self._steps_left = 0
        self._completed = False
        self.subruns_started = 0

    # -- schedule plumbing -----------------------------------------------------

    def _begin_election_phase(self) -> None:
        round_index = self.estimation.result
        assert round_index is not None
        self._t0 = self.c * 2.0 ** (1 + round_index)
        self._schedule = lesu_schedule(self._t0)
        self._phase = "election"
        self._next_subrun()

    def _next_subrun(self) -> None:
        assert self._schedule is not None
        self._current = next(self._schedule)
        self._lesk = LESKPolicy(self._current.eps)
        self._steps_left = self._current.duration
        self.subruns_started += 1

    # -- UniformPolicy -----------------------------------------------------------

    def transmit_probability(self, step: int) -> float:
        if self._phase == "estimation":
            return self.estimation.transmit_probability(step)
        assert self._lesk is not None
        return self._lesk.transmit_probability(step)

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.SINGLE:
            self._completed = True
            return
        if self._phase == "estimation":
            self.estimation.observe(step, state)
            if self.estimation.completed:
                self._begin_election_phase()
            return
        assert self._lesk is not None
        self._lesk.observe(step, state)
        self._steps_left -= 1
        if self._steps_left <= 0:
            self._next_subrun()

    @property
    def u(self) -> float:
        if self._phase == "estimation":
            return float(2**self.estimation.current_round)
        assert self._lesk is not None
        return self._lesk.u

    @property
    def completed(self) -> bool:
        return self._completed

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def t0(self) -> float | None:
        return self._t0

    @property
    def current_subrun(self) -> SubRun | None:
        return self._current

    def clone(self) -> "LESUPolicy":
        return LESUPolicy(c=self.c, L=self.estimation.L)

    def __repr__(self) -> str:
        if self._phase == "estimation":
            return f"LESUPolicy(phase=estimation, round={self.estimation.current_round})"
        return f"LESUPolicy(phase=election, subrun={self._current})"

"""LESK -- Leader Election in Strong-CD with Known eps (Algorithm 1).

State: an estimate ``u`` of ``log2 n``, starting at 0.  Every slot each
station transmits with probability ``2**-u`` (the ``Broadcast(u)``
primitive) and updates:

* ``Null``      -> ``u = max(u - 1, 0)``   (silence: estimate too high),
* ``Collision`` -> ``u = u + 1/a`` with ``a = 8/eps``,
* ``Single``    -> stop; the successful transmitter is the leader.

The asymmetry is the heart of the paper: the adversary can convert any slot
into an observed ``Collision`` (worth ``+1/a``) but can never fabricate a
``Null`` (worth ``-1``); with ``a = 8/eps`` each genuine silence neutralizes
about ``8/eps`` jammed slots, so the walk cannot be pushed away from
``log2 n`` even when a ``(1-eps)`` fraction of every window is jammed.

Theorem 2.6: against any (T, 1-eps)-bounded adversary LESK elects a leader
with probability ``1 - 1/n**beta`` within
``O(max{T, log n / (eps**3 log(1/eps))})`` slots.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.protocols.base import UniformPolicy, probability_from_exponent
from repro.types import ChannelState

__all__ = ["LESKPolicy", "lesk_parameter_a"]


def lesk_parameter_a(eps: float) -> float:
    """The collision-weight parameter ``a = 8/eps`` of Algorithm 1."""
    if not (0.0 < eps < 1.0):
        raise ConfigurationError(f"eps must be in (0, 1), got {eps}")
    return 8.0 / eps


class LESKPolicy(UniformPolicy):
    """Uniform-policy implementation of Algorithm 1.

    Parameters
    ----------
    eps:
        The (known) adversary parameter; sets ``a = 8/eps``.
    initial_u:
        Starting estimate (the paper uses 0; LESU restarts also use 0).
    floor_at_zero:
        Whether ``u`` is clamped at 0 on silences, per Algorithm 1's
        ``u <- max(u - 1, 0)``.
    """

    def __init__(self, eps: float, initial_u: float = 0.0, floor_at_zero: bool = True) -> None:
        if initial_u < 0.0:
            raise ConfigurationError(f"initial_u must be >= 0, got {initial_u}")
        self.eps = float(eps)
        self.a = lesk_parameter_a(eps)
        self.initial_u = float(initial_u)
        self.floor_at_zero = floor_at_zero
        self._u = self.initial_u
        self._completed = False
        # Update counters, used by the analysis module and experiments.
        self.nulls_seen = 0
        self.collisions_seen = 0

    # -- UniformPolicy -------------------------------------------------------

    def transmit_probability(self, step: int) -> float:
        return probability_from_exponent(self._u)

    def observe(self, step: int, state: ChannelState) -> None:
        if state is ChannelState.NULL:
            self.nulls_seen += 1
            self._u = self._u - 1.0
            if self.floor_at_zero and self._u < 0.0:
                self._u = 0.0
        elif state is ChannelState.COLLISION:
            self.collisions_seen += 1
            self._u += 1.0 / self.a
        else:  # SINGLE: the repeat-until loop exits; tolerate being told.
            self._completed = True

    @property
    def u(self) -> float:
        return self._u

    @property
    def completed(self) -> bool:
        return self._completed

    def clone(self) -> "LESKPolicy":
        return LESKPolicy(self.eps, initial_u=self.initial_u, floor_at_zero=self.floor_at_zero)

    # -- introspection --------------------------------------------------------

    def regular_band(self, n: int) -> tuple[float, float]:
        """The 'regular slot' band for ``u`` from Section 2.2:
        ``[u0 - log2(2 ln a), u0 + log2(sqrt(a)) + 1]`` with ``u0 = log2 n``."""
        u0 = math.log2(n)
        lo = u0 - math.log2(2.0 * math.log(self.a))
        hi = u0 + 0.5 * math.log2(self.a) + 1.0
        return lo, hi

    def __repr__(self) -> str:
        return f"LESKPolicy(eps={self.eps}, u={self._u:.3f})"

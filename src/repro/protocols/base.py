"""Protocol interfaces: shared-state uniform policies and per-station
protocols, plus the adapter between them.

Two levels of abstraction:

* :class:`UniformPolicy` -- the paper's algorithms written against the
  ``Broadcast(u)`` abstraction (Functions 1 and 3): a single transmission
  probability per slot plus a state update driven by the observed channel
  state.  A policy must be a *deterministic* function of its observation
  sequence; this is what makes one shared instance equivalent to n
  per-station copies (and is asserted by cross-validation tests).

* :class:`StationProtocol` -- the faithful per-station interface: an
  explicit transmit/listen action per slot and feedback filtered through
  the collision-detection mode.  Non-uniform baselines (ARS MAC) and the
  Notification wrapper implement this directly.

:class:`UniformStationAdapter` runs a private copy of a uniform policy
inside one station, applying the paper's ``Broadcast`` conventions:

* strong-CD (Function 1): every station receives the observed state; a
  station that hears/sends a successful ``Single`` learns the election is
  over (the transmitter knows it is the leader).
* weak-CD (Function 3): a transmitter receives no feedback and *assumes*
  ``Collision``; a listener that hears a ``Single`` knows a leader exists
  (but the leader itself does not -- hence the Notification wrapper).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.types import Action, CDMode, ChannelState, PerceivedState, SlotFeedback

__all__ = ["UniformPolicy", "StationProtocol", "UniformStationAdapter"]

#: Largest exponent for which ``2**-u`` is a positive double.
_MAX_EXPONENT = 1074.0


def probability_from_exponent(u: float) -> float:
    """``2**-u`` clamped against float underflow/overflow (u may be any real)."""
    if u <= 0.0:
        return 1.0
    if u >= _MAX_EXPONENT:
        return 0.0
    return 2.0 ** -u


class UniformPolicy(abc.ABC):
    """Shared-state description of a uniform protocol.

    The driver (fast engine or per-station adapter) calls, for each local
    step ``s = 0, 1, 2, ...``:

    1. ``p = policy.transmit_probability(s)`` -- the common probability;
    2. (channel resolves) ;
    3. ``policy.observe(s, state)`` with the observed channel state under
       the ``Broadcast`` convention of the CD mode in use.

    ``observe`` is *not* called for the step that ends the run (a
    successful ``Single`` in strong-CD), mirroring the paper's
    ``repeat ... until state = Single`` loop; policies should nevertheless
    tolerate observing ``SINGLE`` (they mark themselves completed).
    """

    @abc.abstractmethod
    def transmit_probability(self, step: int) -> float:
        """Common per-station transmission probability for local step *step*."""

    @abc.abstractmethod
    def observe(self, step: int, state: ChannelState) -> None:
        """Advance the shared state given the observed state of step *step*."""

    @property
    def u(self) -> float:
        """Current estimator value, if the policy has one (NaN otherwise)."""
        return math.nan

    @property
    def completed(self) -> bool:
        """Whether the policy finished of its own accord (e.g. Estimation
        returned a value).  Election by ``Single`` is signalled by the
        engine, not the policy."""
        return False

    @property
    def result(self) -> object | None:
        """Policy-specific result available once :attr:`completed`."""
        return None

    def clone(self) -> "UniformPolicy":
        """Fresh instance with identical parameters and *initial* state."""
        raise NotImplementedError


class StationProtocol(abc.ABC):
    """Per-station protocol driven by the faithful engine.

    Lifecycle: ``reset`` once, then alternating ``begin_slot`` /
    ``end_slot`` for every global slot until :attr:`done`.
    """

    @abc.abstractmethod
    def reset(self, station_id: int, rng: np.random.Generator) -> None:
        """Initialize for a new run.  ``station_id`` is for bookkeeping only
        (stations are anonymous in the model and must not use it to break
        symmetry); ``rng`` is the station's private randomness."""

    @abc.abstractmethod
    def begin_slot(self, slot: int) -> Action:
        """Decide to transmit or listen in global slot *slot*."""

    @abc.abstractmethod
    def end_slot(self, slot: int, feedback: SlotFeedback) -> None:
        """Receive the slot's feedback (already CD-mode filtered)."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """Whether the station has terminated its protocol."""

    @property
    @abc.abstractmethod
    def is_leader(self) -> bool | None:
        """Leader status: True / False once decided, None while undecided."""

    # -- optional introspection for traces and adaptive adversaries -------

    def transmit_probability_hint(self) -> float:
        """Transmission probability the station will use next (NaN if unknown)."""
        return math.nan

    def u_hint(self) -> float:
        """Current estimator value (NaN if not applicable)."""
        return math.nan


class UniformStationAdapter(StationProtocol):
    """Runs a private copy of a :class:`UniformPolicy` inside one station.

    Parameters
    ----------
    policy:
        A fresh policy instance owned by this station.
    cd_mode:
        ``STRONG`` or ``WEAK``.  (The paper defines its algorithms only for
        CD models; no-CD baselines implement :class:`StationProtocol`
        directly.)
    """

    def __init__(self, policy: UniformPolicy, cd_mode: CDMode = CDMode.STRONG) -> None:
        if cd_mode is CDMode.NO_CD:
            raise ConfigurationError(
                "uniform Broadcast-based protocols require a CD model; "
                "use a dedicated no-CD protocol instead"
            )
        self.policy = policy
        self.cd_mode = cd_mode
        self._rng: np.random.Generator | None = None
        self._step = 0
        self._pending = False
        self._done = False
        self._is_leader: bool | None = None
        self.station_id: int | None = None

    # -- StationProtocol ----------------------------------------------------

    def reset(self, station_id: int, rng: np.random.Generator) -> None:
        self.station_id = station_id
        self._rng = rng
        self._step = 0
        self._pending = False
        self._done = False
        self._is_leader = None

    def begin_slot(self, slot: int) -> Action:
        if self._rng is None:
            raise ProtocolError("begin_slot before reset")
        if self._pending:
            raise ProtocolError("begin_slot called twice without end_slot")
        if self._done:
            return Action.LISTEN
        self._pending = True
        p = self.policy.transmit_probability(self._step)
        if p > 0.0 and self._rng.random() < p:
            return Action.TRANSMIT
        return Action.LISTEN

    def end_slot(self, slot: int, feedback: SlotFeedback) -> None:
        if self._done:
            return
        if not self._pending:
            raise ProtocolError("end_slot without begin_slot")
        self._pending = False
        step = self._step
        self._step += 1

        perceived = feedback.perceived
        if perceived is PerceivedState.UNKNOWN and (
            not feedback.transmitted or self.cd_mode is CDMode.STRONG
        ):
            # Fault-erased slot (repro.resilience): the local step is
            # consumed but carries no information -- no policy update.  (A
            # weak-CD transmitter falls through: its "assume Collision"
            # comes from knowing it transmitted, not from channel feedback.)
            return
        if feedback.transmitted:
            if self.cd_mode is CDMode.STRONG:
                # Strong-CD: the transmitter hears the observed state; a
                # Single means it transmitted successfully -> it is leader.
                if perceived is PerceivedState.SINGLE:
                    self._done = True
                    self._is_leader = True
                    return
                self.policy.observe(step, ChannelState(int(perceived)))
            else:
                # Weak-CD Broadcast (Function 3): assume Collision.
                self.policy.observe(step, ChannelState.COLLISION)
        else:
            if perceived is PerceivedState.SINGLE:
                # A successful message was heard: selection resolved.  In
                # strong-CD the transmitter becomes leader; this listener is
                # a non-leader either way.
                self._done = True
                self._is_leader = False
                return
            self.policy.observe(step, ChannelState(int(perceived)))

        if self.policy.completed:
            self._done = True

    @property
    def done(self) -> bool:
        return self._done

    @property
    def is_leader(self) -> bool | None:
        return self._is_leader

    def transmit_probability_hint(self) -> float:
        if self._done:
            return 0.0
        return self.policy.transmit_probability(self._step)

    def u_hint(self) -> float:
        return self.policy.u

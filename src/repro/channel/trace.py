"""Recording of per-slot simulation history.

A :class:`ChannelTrace` stores, per slot: the number of transmitters, the
jam flag, the true and observed channel states, and (for uniform protocols)
the common transmission probability and estimator value ``u`` at the start
of the slot.  Traces feed three consumers:

* the adversary (its "entire history of the channel", Section 1.1);
* the analysis module (slot classification IS/IC/CS/CC/E/R, Section 2.2);
* experiment output (figure series F1 etc.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.types import ChannelState

__all__ = ["SlotRecord", "ChannelTrace"]


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Immutable view of one recorded slot."""

    slot: int
    transmitters: int
    jammed: bool
    true_state: ChannelState
    observed_state: ChannelState
    #: Common per-station transmission probability at the start of the slot
    #: (NaN when the run was not uniform or recording was disabled).
    probability: float = math.nan
    #: Estimator value ``u`` at the start of the slot (NaN if not applicable).
    u: float = math.nan


class ChannelTrace:
    """Append-only history of a run, with cheap columnar storage.

    The trace doubles as the adversary's view of the past: observed states
    and jam flags are queryable per slot, and summary counters (number of
    singles, collisions, jams, ...) are maintained incrementally.
    """

    def __init__(self, record_probabilities: bool = True) -> None:
        self.record_probabilities = record_probabilities
        self._transmitters: list[int] = []
        self._jammed: list[bool] = []
        self._true_states: list[int] = []
        self._observed: list[int] = []
        self._probability: list[float] = []
        self._u: list[float] = []
        # Incremental counters over *observed* states.
        self.observed_nulls = 0
        self.observed_singles = 0
        self.observed_collisions = 0
        self.jam_count = 0
        self.successful_singles = 0
        self.first_single_slot: int | None = None

    # -- recording ---------------------------------------------------------

    def append(
        self,
        transmitters: int,
        jammed: bool,
        true_state: ChannelState,
        observed_state: ChannelState,
        probability: float = math.nan,
        u: float = math.nan,
    ) -> None:
        """Record one slot."""
        slot = len(self._transmitters)
        self._transmitters.append(transmitters)
        self._jammed.append(jammed)
        self._true_states.append(int(true_state))
        self._observed.append(int(observed_state))
        if self.record_probabilities:
            self._probability.append(probability)
            self._u.append(u)
        if observed_state is ChannelState.NULL:
            self.observed_nulls += 1
        elif observed_state is ChannelState.SINGLE:
            self.observed_singles += 1
        else:
            self.observed_collisions += 1
        if jammed:
            self.jam_count += 1
        if true_state is ChannelState.SINGLE and not jammed:
            self.successful_singles += 1
            if self.first_single_slot is None:
                self.first_single_slot = slot

    # -- querying ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transmitters)

    def __getitem__(self, slot: int) -> SlotRecord:
        if slot < 0:
            slot += len(self)
        return SlotRecord(
            slot=slot,
            transmitters=self._transmitters[slot],
            jammed=self._jammed[slot],
            true_state=ChannelState(self._true_states[slot]),
            observed_state=ChannelState(self._observed[slot]),
            probability=self._probability[slot] if self.record_probabilities else math.nan,
            u=self._u[slot] if self.record_probabilities else math.nan,
        )

    def __iter__(self) -> Iterator[SlotRecord]:
        for slot in range(len(self)):
            yield self[slot]

    def observed_state(self, slot: int) -> ChannelState:
        """Observed state of a past slot (what all listeners received)."""
        return ChannelState(self._observed[slot])

    def was_jammed(self, slot: int) -> bool:
        """Whether a past slot was jammed."""
        return self._jammed[slot]

    # -- columnar export ---------------------------------------------------

    def transmitters_array(self) -> np.ndarray:
        """Per-slot transmitter counts as an int64 array."""
        return np.asarray(self._transmitters, dtype=np.int64)

    def jammed_array(self) -> np.ndarray:
        """Per-slot jam flags as a boolean array."""
        return np.asarray(self._jammed, dtype=bool)

    def true_states_array(self) -> np.ndarray:
        """Per-slot true channel states (int codes) as an int8 array."""
        return np.asarray(self._true_states, dtype=np.int8)

    def observed_states_array(self) -> np.ndarray:
        """Per-slot observed states (int codes) as an int8 array."""
        return np.asarray(self._observed, dtype=np.int8)

    def probability_array(self) -> np.ndarray:
        """Per-slot common transmission probabilities (float array)."""
        return np.asarray(self._probability, dtype=np.float64)

    def u_array(self) -> np.ndarray:
        """Per-slot estimator values at slot start (float array)."""
        return np.asarray(self._u, dtype=np.float64)

    # -- summaries ---------------------------------------------------------

    def tail_observed(self, k: int) -> list[ChannelState]:
        """Observed states of the last *k* slots (shorter at run start)."""
        return [ChannelState(s) for s in self._observed[-k:]]

    def jam_fraction(self) -> float:
        """Fraction of recorded slots that were jammed."""
        return self.jam_count / len(self) if len(self) else 0.0

    def to_rows(self) -> list[dict[str, object]]:
        """Export the trace as a list of plain dictionaries (CSV-friendly)."""
        return [
            {
                "slot": rec.slot,
                "transmitters": rec.transmitters,
                "jammed": rec.jammed,
                "true_state": rec.true_state.name,
                "observed_state": rec.observed_state.name,
                "probability": rec.probability,
                "u": rec.u,
            }
            for rec in self
        ]

"""Fault-injecting wrapper over the pristine channel substrate.

:func:`corrupt_observed` is the single point where the fault model's
observation-layer corruption (:class:`repro.resilience.faults.SlotFaults`)
rewrites what listeners hear; :class:`FaultyChannel` packages it with
:func:`resolve_slot` for step-by-step use.  The engines call
:func:`resolve_slot` + :func:`corrupt_observed` directly on their hot paths,
so both entry points share identical semantics:

* **erase** -- nobody hears the slot; feedback is withheld entirely
  (returned as ``None``), so even a successful Single goes unnoticed and
  does not end a run.
* **downgrade** -- collision detection degrades: a ``SINGLE`` is reported
  as ``COLLISION`` to everyone (a would-be winner does not learn it won).
* **flip** -- ``NULL <-> COLLISION`` swap.  Unlike the budgeted adversary,
  a fault *can* fabricate a silent slot out of a collision; that extra
  power is deliberate (the fault model stresses beyond §1.1's adversary).

Order matters and is fixed: erase wins outright; otherwise downgrade is
applied before flip (degraded hardware first, then the symbol-level lie).
Corruption acts on the **observed** state -- after jamming -- and applies
to all stations alike, keeping the three engines' count-level semantics
identical.
"""

from __future__ import annotations

from repro.channel.channel import SlotOutcome, resolve_slot
from repro.types import ChannelState

__all__ = ["corrupt_observed", "FaultyChannel"]

_FLIP = {
    ChannelState.NULL: ChannelState.COLLISION,
    ChannelState.COLLISION: ChannelState.NULL,
    ChannelState.SINGLE: ChannelState.SINGLE,
}


def corrupt_observed(observed: ChannelState, flags) -> "ChannelState | None":
    """Apply one slot's corruption flags to the observed channel state.

    *flags* is any object with boolean ``erase`` / ``downgrade`` / ``flip``
    attributes (:class:`repro.resilience.faults.SlotFaults` in practice).
    Returns ``None`` when the slot is erased (no feedback delivered).
    """
    if flags.erase:
        return None
    if flags.downgrade and observed is ChannelState.SINGLE:
        observed = ChannelState.COLLISION
    if flags.flip:
        observed = _FLIP[observed]
    return observed


class FaultyChannel:
    """Stateful channel that passes outcomes through a fault realization.

    Wraps the pristine :class:`~repro.channel.channel.Channel` semantics:
    each :meth:`step` resolves the slot physically, then asks the realized
    fault schedule for this slot's corruption flags and rewrites the
    observation.  Mirrors ``Channel.step`` for exploration and tests; the
    engines inline the same two calls.
    """

    def __init__(self, realized) -> None:
        #: :class:`repro.resilience.faults.RealizedFaults` driving corruption.
        self.realized = realized
        self._slot = 0
        self._last: SlotOutcome | None = None
        self._last_observed: ChannelState | None = None

    @property
    def slot(self) -> int:
        """Index of the next slot to be resolved."""
        return self._slot

    @property
    def last_outcome(self) -> SlotOutcome | None:
        """Physical (pre-corruption) outcome of the last resolved slot."""
        return self._last

    @property
    def last_observed(self) -> "ChannelState | None":
        """Post-corruption observation of the last slot (None if erased)."""
        return self._last_observed

    def step(self, transmitters: int, jammed: bool = False) -> "ChannelState | None":
        """Resolve the next slot, apply corruption, and advance time.

        Returns the corrupted observation (``None`` when erased); the
        physical outcome remains available via :attr:`last_outcome`.
        """
        outcome = resolve_slot(self._slot, transmitters, jammed)
        flags = self.realized.begin_slot(self._slot, self.realized.awake_count(self._slot))
        self._slot += 1
        self._last = outcome
        self._last_observed = corrupt_observed(outcome.observed_state, flags)
        return self._last_observed

    def reset(self) -> None:
        """Rewind to slot 0 (the fault realization is *not* re-drawn)."""
        self._slot = 0
        self._last = None
        self._last_observed = None

"""Per-station feedback under the three collision-detection modes.

Section 1.1 of the paper defines:

* **strong-CD** -- stations transmit and listen simultaneously; *all*
  stations receive the observed state of each slot.
* **weak-CD** -- a transmitting station learns nothing from the channel
  (it only knows it transmitted, hence that the slot was ``SINGLE`` or
  ``COLLISION``); listeners receive the observed state.
* **no-CD** -- listeners can only distinguish ``SINGLE`` from
  "no single" (zero or >= 2 transmitters); transmitters learn nothing.

A jammed slot is observed as ``COLLISION`` (or ``NO_SINGLE`` under no-CD).
"""

from __future__ import annotations

from repro.types import CDMode, ChannelState, PerceivedState, SlotFeedback

__all__ = ["perceived_by_listener", "perceived_by_transmitter", "feedback_for"]

_LISTENER_MAP = {
    ChannelState.NULL: PerceivedState.NULL,
    ChannelState.SINGLE: PerceivedState.SINGLE,
    ChannelState.COLLISION: PerceivedState.COLLISION,
}


def perceived_by_listener(observed: ChannelState, mode: CDMode) -> PerceivedState:
    """What a non-transmitting station perceives, given the observed state."""
    if mode is CDMode.NO_CD:
        if observed is ChannelState.SINGLE:
            return PerceivedState.SINGLE
        return PerceivedState.NO_SINGLE
    return _LISTENER_MAP[observed]


def perceived_by_transmitter(observed: ChannelState, mode: CDMode) -> PerceivedState:
    """What a transmitting station perceives.

    In strong-CD the transmitter receives the observed state like everyone
    else (in particular it *hears its own* successful ``SINGLE``, which is
    how a leader learns it won).  In weak-CD and no-CD the transmitter
    receives no channel feedback (``UNKNOWN``).
    """
    if mode is CDMode.STRONG:
        return _LISTENER_MAP[observed]
    return PerceivedState.UNKNOWN


def feedback_for(transmitted: bool, observed: ChannelState, mode: CDMode) -> SlotFeedback:
    """Assemble the :class:`~repro.types.SlotFeedback` for one station."""
    if transmitted:
        perceived = perceived_by_transmitter(observed, mode)
    else:
        perceived = perceived_by_listener(observed, mode)
    return SlotFeedback(transmitted=transmitted, perceived=perceived)

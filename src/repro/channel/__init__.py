"""Slotted single-hop radio channel substrate.

Implements the physical model of Section 1.1: three-state channel
(Null / Single / Collision), adversarial jamming that is indistinguishable
from a collision, and per-CD-mode feedback delivery.
"""

from repro.channel.channel import Channel, SlotOutcome, resolve_slot
from repro.channel.faulty import FaultyChannel, corrupt_observed
from repro.channel.feedback import feedback_for, perceived_by_listener
from repro.channel.trace import ChannelTrace, SlotRecord

__all__ = [
    "Channel",
    "SlotOutcome",
    "resolve_slot",
    "FaultyChannel",
    "corrupt_observed",
    "feedback_for",
    "perceived_by_listener",
    "ChannelTrace",
    "SlotRecord",
]

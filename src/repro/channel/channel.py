"""Slot resolution: transmitter count + jamming -> true/observed states.

The adversary cannot inject a ``Null`` or a ``Single``: jamming a slot makes
it *observed* as ``COLLISION`` regardless of the true state, because "to the
listening stations, a jammed slot is indistinguishable from the case of at
least two transmitters" (Section 1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ChannelState

__all__ = ["SlotOutcome", "resolve_slot", "Channel"]


@dataclass(frozen=True, slots=True)
class SlotOutcome:
    """Physical outcome of one slot.

    Attributes
    ----------
    slot:
        Slot index (0-based).
    transmitters:
        Number of honest stations that transmitted.
    jammed:
        Whether the adversary jammed the slot.
    true_state:
        State determined by the honest transmitters only.
    observed_state:
        State as received by listening stations (``COLLISION`` if jammed).
    """

    slot: int
    transmitters: int
    jammed: bool
    true_state: ChannelState
    observed_state: ChannelState

    @property
    def successful_single(self) -> bool:
        """True iff exactly one station transmitted and the slot was not
        jammed, i.e. the message went through and listeners heard it."""
        return self.true_state is ChannelState.SINGLE and not self.jammed


def resolve_slot(slot: int, transmitters: int, jammed: bool) -> SlotOutcome:
    """Resolve the physical outcome of a slot.

    Parameters
    ----------
    slot:
        Slot index, recorded in the outcome.
    transmitters:
        Number of honest stations transmitting in this slot.
    jammed:
        Adversary's (budget-checked) jamming decision for this slot.
    """
    true_state = ChannelState.from_transmitter_count(transmitters)
    observed = ChannelState.COLLISION if jammed else true_state
    return SlotOutcome(
        slot=slot,
        transmitters=transmitters,
        jammed=jammed,
        true_state=true_state,
        observed_state=observed,
    )


class Channel:
    """Stateful convenience wrapper advancing one slot at a time.

    Mostly useful for step-by-step exploration and tests; the simulation
    engines call :func:`resolve_slot` directly.
    """

    def __init__(self) -> None:
        self._slot = 0
        self._last: SlotOutcome | None = None

    @property
    def slot(self) -> int:
        """Index of the next slot to be resolved."""
        return self._slot

    @property
    def last_outcome(self) -> SlotOutcome | None:
        """Outcome of the most recently resolved slot, if any."""
        return self._last

    def step(self, transmitters: int, jammed: bool = False) -> SlotOutcome:
        """Resolve the next slot and advance time."""
        outcome = resolve_slot(self._slot, transmitters, jammed)
        self._slot += 1
        self._last = outcome
        return outcome

    def reset(self) -> None:
        """Rewind to slot 0."""
        self._slot = 0
        self._last = None
